"""The simulation kernel: one clock, phase-ordered components, wakeups.

A :class:`SimKernel` owns the global cycle counter and an ordered list of
*phases*; each phase holds the components ticked during it.  The stage
ordering the hand-written loops used to encode positionally (network
frame setup → arrival delivery → routers → NIs → local delivery → CMP
events → tiles) is explicit, named, and extensible: a subsystem joins
the simulation by registering components, not by editing the loop.

Scheduling is **event-driven**: instead of polling every component every
cycle, the kernel keeps a timestamp-ordered wakeup heap plus per-phase
active sets.  A component is visited only on cycles it (or a producer
acting on it) asked for via :meth:`SimKernel.wake`; after every visit it
is re-armed from its *idleness contract*:

- a component exposing ``next_wake(cycle)`` names the next cycle it
  needs service (or ``None`` to sleep until woken) — timed components
  like the reliability layer's retransmission deadlines or the sampler's
  interval boundaries;
- otherwise the default contract applies: busy (``has_work()``) means
  "visit me again next cycle", idle means sleep until a producer wakes
  it.

Every visit re-checks ``has_work()`` before ticking, so a *spurious*
wake is always harmless — the correctness obligation on producers is
only that no component is left busy without a pending wake.  Execution
order is deterministic regardless of wake arrival order: due wakeups
drain into their phase's active set and each set is swept in
(phase order, registration index) order — exactly the order the
tick-everything loop used.  ``SimKernel(event_driven=False)`` (or
``REPRO_KERNEL_MODE=tick``) restores the legacy poll-everything loop,
which the invariance tests use to prove both schedulers produce
bit-identical results.

Instrumentation is opt-in and zero-cost when off: ``enable_timing()``
accumulates wall-clock per phase — and, with ``per_component=True``, per
component label — for profiling the simulator itself (never visible to
the simulation), and ``set_tracer()`` streams ``(cycle, phase,
component)`` tick events to a callback, which is how a wedged simulation
can be replayed component-by-component.  Subsystems that attach extra
observability (the telemetry layer's sampler/tracer) record a one-line
state note in :attr:`SimKernel.annotations` so ``describe()`` can report
it without the kernel knowing about them.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.component import Component
from repro.sim.stats import StatsRegistry

Tracer = Callable[[int, str, Component], None]


def component_label(component: Component) -> str:
    """Stable profiling label for a component.

    Prefers an explicit ``label`` attribute (``CallbackComponent``),
    falling back to the class name — so all 16 routers of a mesh
    aggregate into one hot-path entry instead of 16 singletons.
    """
    label = getattr(component, "label", None)
    if label:
        return str(label)
    return type(component).__name__


class _Scheduled:
    """Per-registration scheduling state (one per active component)."""

    __slots__ = (
        "component", "phase", "order", "next_wake_fn", "heap_due",
        "queued_for", "queued_next",
    )

    def __init__(self, component: Component, phase: "Phase", order: int):
        self.component = component
        self.phase = phase
        #: Registration index within the phase — the deterministic
        #: tie-break for simultaneous wakes.
        self.order = order
        self.next_wake_fn = getattr(component, "next_wake", None)
        #: Earliest heap-scheduled visit cycle (-1: none pending).
        self.heap_due = -1
        #: Cycle this registration is already queued in its phase's
        #: active set for (-1: not queued) — dedups same-cycle wakes.
        self.queued_for = -1
        #: Cycle this registration is already queued in its phase's
        #: *next* active set for — dedups next-cycle re-arms, which
        #: bypass the heap entirely.
        self.queued_next = -1


def _reg_order(reg: _Scheduled) -> int:
    return reg.order


class Phase:
    """One named stage of the per-cycle loop."""

    __slots__ = (
        "name", "components", "index", "pending", "pending_next", "driver",
    )

    def __init__(self, name: str, index: int = 0):
        self.name = name
        self.components: List[Component] = []
        #: Position in the kernel's sweep order (maintained on insert).
        self.index = index
        #: This cycle's active set: registrations due for a visit.
        self.pending: List[_Scheduled] = []
        #: Next cycle's active set — busy components re-arm here instead
        #: of round-tripping through the wakeup heap (the heap is for
        #: *timed* wakes; the next-cycle case is the hot path).
        self.pending_next: List[_Scheduled] = []
        #: Optional batch driver: ``driver(cycle, sorted_active_regs) ->
        #: (ticked, skipped)`` sweeps the whole phase in one call (the
        #: ``REPRO_KERNEL_MODE=batch`` dataplane).  The kernel still owns
        #: active-set bookkeeping and re-arms each registration from its
        #: idleness contract afterwards.
        self.driver = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Phase({self.name!r}, {len(self.components)} components)"


class SimKernel:
    """Global clock + phase-ordered wakeup schedule + stats registry."""

    def __init__(
        self,
        event_driven: Optional[bool] = None,
        mode: Optional[str] = None,
    ) -> None:
        self.cycle = 0
        self.stats = StatsRegistry()
        # Scheduler mode: "tick" (legacy poll-everything), "event"
        # (wakeup-driven, the default), or "batch" (event scheduling plus
        # phase drivers that sweep a whole phase in bulk).  The boolean
        # ``event_driven`` parameter is the legacy spelling and wins when
        # given explicitly.
        if mode is None:
            if event_driven is None:
                mode = os.environ.get("REPRO_KERNEL_MODE", "event")
                if mode not in ("tick", "event", "batch"):
                    mode = "event"
            else:
                mode = "event" if event_driven else "tick"
        elif mode not in ("tick", "event", "batch"):
            raise ValueError(f"unknown kernel mode {mode!r}")
        self.mode = mode
        self._event_driven = mode != "tick"
        self._phases: List[Phase] = []
        self._phase_by_name: Dict[str, Phase] = {}
        #: Registered but never ticked (reactive state-holders); they count
        #: for idle detection and wedge snapshots only.
        self._passive: List[Tuple[str, Component]] = []
        #: id(component) -> scheduling record (None marks passive).
        self._reg_of: Dict[int, Optional[_Scheduled]] = {}
        #: Timestamp-ordered wakeup heap of ``(due, seq, record)``.
        self._heap: List[Tuple[int, int, _Scheduled]] = []
        self._seq = 0
        #: Index of the phase currently being swept (None outside step).
        self._sweep_index: Optional[int] = None
        #: Idle-efficiency counters (the ``kernel`` stat group).
        self.cycles_total = 0
        self.component_wakes = 0
        self.wakes_skipped = 0
        #: Batched-sweep counters (only move in ``mode="batch"``): phase
        #: sweeps handled by a driver, router visits served by the fused
        #: fast path, and visits that fell back to the scalar
        #: ``tick()`` because a hook override touched the router.
        self.batch_sweeps = 0
        self.batch_fast_ticks = 0
        self.batch_fallback_ticks = 0
        self._timing = False
        self._component_timing = False
        self._tracer: Optional[Tracer] = None
        self.phase_seconds: Dict[str, float] = {}
        self.phase_ticks: Dict[str, int] = {}
        #: ``(phase, component label) -> seconds/ticks`` accumulated when
        #: ``enable_timing(per_component=True)`` is on.
        self.component_seconds: Dict[Tuple[str, str], float] = {}
        self.component_ticks: Dict[Tuple[str, str], int] = {}
        #: Free-form state notes from attached subsystems (telemetry
        #: sampler/tracer...); rendered by :meth:`describe`.
        self.annotations: Dict[str, str] = {}

    @property
    def event_driven(self) -> bool:
        return self._event_driven

    # -- registration -------------------------------------------------------
    def add_phase(self, name: str, *, before: Optional[str] = None) -> Phase:
        """Append a phase (or insert it before an existing one).

        Re-adding an existing name returns the existing phase, so
        independent subsystems can share a phase by agreeing on its name.
        """
        existing = self._phase_by_name.get(name)
        if existing is not None:
            return existing
        phase = Phase(name)
        if before is not None:
            anchor = self._phase_by_name.get(before)
            if anchor is None:
                raise KeyError(f"no phase named {before!r}")
            self._phases.insert(self._phases.index(anchor), phase)
        else:
            self._phases.append(phase)
        for index, existing_phase in enumerate(self._phases):
            existing_phase.index = index
        self._phase_by_name[name] = phase
        return phase

    def register(
        self,
        component: Component,
        phase: str = "main",
        *,
        tick: bool = True,
        passive: bool = False,
    ) -> None:
        """Add a component to a phase (creating the phase at the end of the
        current order if needed).

        ``passive=True`` registers a reactive state-holder: tracked for
        idle detection and wedge snapshots, never scheduled — waking it
        raises.  (``tick=False`` is the legacy spelling of the same
        contract.)  Active components are primed with a wake on the next
        cycle; their first visit either ticks them or lets their
        idleness contract put them to sleep.
        """
        if passive or not tick:
            self._passive.append((phase, component))
            self._reg_of[id(component)] = None
            return
        phase_obj = self.add_phase(phase)
        reg = _Scheduled(component, phase_obj, len(phase_obj.components))
        phase_obj.components.append(component)
        self._reg_of[id(component)] = reg
        if self._event_driven:
            self._schedule(reg, self.cycle + 1)

    def set_phase_driver(self, phase: str, driver) -> None:
        """Install a batch driver for one phase (creating it if needed).

        ``driver(cycle, regs)`` receives the phase's active registrations
        for the cycle, sorted in registration order, and must visit each
        one exactly as the default sweep would (honouring ``has_work()``
        gating); it returns ``(ticked, skipped)`` counts.  The kernel
        keeps ownership of wake scheduling and post-sweep re-arming, so a
        driver only replaces the inner visit loop — never the schedule.
        """
        self.add_phase(phase).driver = driver

    def phases(self) -> Tuple[str, ...]:
        return tuple(phase.name for phase in self._phases)

    def components(self, phase: Optional[str] = None) -> List[Component]:
        if phase is not None:
            return list(self._phase_by_name[phase].components)
        return [c for p in self._phases for c in p.components]

    # -- wakeup scheduling --------------------------------------------------
    def wake(self, component: Component, cycle: Optional[int] = None) -> None:
        """Request a visit of ``component`` at ``cycle`` (default: as soon
        as legal).

        Producers call this at every state transition that can make a
        sleeping component busy.  Wakes are normalised so the phase sweep
        stays deterministic: a wake landing mid-step can only target the
        *current* cycle if the component's phase has not been swept yet;
        anything else (including wakes scheduled in the past) rounds up
        to the next cycle.  Duplicate wakes coalesce; spurious wakes are
        harmless because every visit re-checks ``has_work()``.
        """
        reg = self._reg_of.get(id(component))
        if reg is None:
            if id(component) in self._reg_of:
                raise ValueError(
                    f"passive component {component_label(component)} "
                    "cannot be scheduled"
                )
            raise KeyError(
                f"cannot wake unregistered component "
                f"{component_label(component)}"
            )
        if not self._event_driven:
            return
        now = self.cycle
        sweeping = self._sweep_index
        if sweeping is not None and reg.phase.index > sweeping:
            earliest = now
        else:
            earliest = now + 1
        at = earliest if cycle is None or cycle < earliest else cycle
        if at == now:
            if reg.queued_for != now:
                reg.queued_for = now
                reg.phase.pending.append(reg)
            return
        self._schedule(reg, at)

    def _schedule(self, reg: _Scheduled, at: int) -> None:
        if at == self.cycle + 1:
            # Hot path: next-cycle revisit goes straight into the phase's
            # next active set — no heap traffic.  A stale heap entry for a
            # later cycle may still fire; the visit it triggers re-checks
            # ``has_work()`` and is a no-op unless a legitimate wake
            # queued the component for that cycle anyway.
            if reg.queued_next != at:
                reg.queued_next = at
                reg.phase.pending_next.append(reg)
            return
        if reg.heap_due != -1 and reg.heap_due <= at:
            return
        reg.heap_due = at
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, reg))

    # -- instrumentation ----------------------------------------------------
    def enable_timing(
        self, enabled: bool = True, per_component: bool = False
    ) -> None:
        """Accumulate wall-clock seconds + tick counts per phase.

        ``per_component=True`` additionally attributes time to each
        component label within its phase (the :class:`RunProfiler` input —
        costs one extra ``perf_counter`` pair per tick, so leave it off
        unless profiling).  Profiling of the simulator, not the
        simulation: it cannot change simulated behaviour, only report
        where host time goes.
        """
        self._timing = enabled
        self._component_timing = enabled and per_component

    @property
    def timing_enabled(self) -> bool:
        return self._timing

    @property
    def component_timing_enabled(self) -> bool:
        return self._component_timing

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Stream every component tick as ``(cycle, phase, component)``."""
        self._tracer = tracer

    # -- the loop -----------------------------------------------------------
    def step(self) -> int:
        """Advance one cycle; returns the new cycle number."""
        self.cycle += 1
        cycle = self.cycle
        self.cycles_total += 1
        if not self._event_driven:
            if self._timing or self._tracer is not None:
                return self._step_instrumented(cycle)
            return self._step_tick_all(cycle)
        # Promote the next-cycle active sets queued by the previous sweep
        # (the heap-free re-arm path), stamping the same-cycle dedup
        # marker the heap drain and same-cycle wakes both check.
        for phase in self._phases:
            nxt = phase.pending_next
            if nxt:
                for reg in nxt:
                    reg.queued_for = cycle
                pending = phase.pending
                if pending:
                    pending.extend(nxt)
                    nxt.clear()
                else:
                    phase.pending_next = pending
                    phase.pending = nxt
        # Drain every wakeup due by now into its phase's active set.
        # Entries whose record has since been superseded (an earlier wake
        # coalesced them) or rescheduled into the future are skipped; a
        # fast-forwarded clock makes stale timed entries fire late, which
        # interval components treat as an off-boundary no-op.
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            _, _, reg = heapq.heappop(heap)
            if reg.heap_due == -1 or reg.heap_due > cycle:
                continue
            reg.heap_due = -1
            if reg.queued_for != cycle:
                reg.queued_for = cycle
                reg.phase.pending.append(reg)
        if self._timing or self._tracer is not None:
            return self._sweep_instrumented(cycle)
        wakes = 0
        skipped = 0
        nxt_cycle = cycle + 1
        for phase in self._phases:
            pending = phase.pending
            if not pending:
                continue
            self._sweep_index = phase.index
            phase.pending = []
            if len(pending) > 1:
                pending.sort(key=_reg_order)
            pending_next = phase.pending_next
            driver = phase.driver
            if driver is not None:
                ticked, gated = driver(cycle, pending)
                wakes += ticked
                skipped += gated
                self.batch_sweeps += 1
                # Re-arm from each idleness contract, exactly as the
                # default sweep below does after visiting.
                for reg in pending:
                    fn = reg.next_wake_fn
                    if fn is None:
                        if (
                            reg.component.has_work()
                            and reg.queued_next != nxt_cycle
                        ):
                            reg.queued_next = nxt_cycle
                            pending_next.append(reg)
                    else:
                        nxt = fn(cycle)
                        if nxt is not None:
                            self._schedule(reg, nxt if nxt > cycle else nxt_cycle)
                continue
            for reg in pending:
                component = reg.component
                fn = reg.next_wake_fn
                if component.has_work():
                    component.tick(cycle)
                    wakes += 1
                    if fn is None:
                        if component.has_work() and reg.queued_next != nxt_cycle:
                            reg.queued_next = nxt_cycle
                            pending_next.append(reg)
                        continue
                else:
                    skipped += 1
                    if fn is None:
                        continue
                nxt = fn(cycle)
                if nxt is not None:
                    self._schedule(reg, nxt if nxt > cycle else nxt_cycle)
        self.component_wakes += wakes
        self.wakes_skipped += skipped
        self._sweep_index = None
        return cycle

    def _sweep_instrumented(self, cycle: int) -> int:
        tracer = self._tracer
        per_component = self._component_timing
        for phase in self._phases:
            if not phase.pending:
                continue
            self._sweep_index = phase.index
            pending = phase.pending
            phase.pending = []
            if len(pending) > 1:
                pending.sort(key=_reg_order)
            start = time.perf_counter() if self._timing else 0.0
            driver = phase.driver
            if driver is not None:
                # Batched phases profile as one unit: the sweep is a
                # handful of array passes, so per-component attribution
                # would be meaningless.  The kernel tracer sees a single
                # event for the driver instead of one per router.
                if tracer is not None:
                    tracer(cycle, phase.name, driver)
                ticked, gated = driver(cycle, pending)
                self.component_wakes += ticked
                self.wakes_skipped += gated
                self.batch_sweeps += 1
                for reg in pending:
                    fn = reg.next_wake_fn
                    if fn is None:
                        if reg.component.has_work():
                            self._schedule(reg, cycle + 1)
                    else:
                        nxt = fn(cycle)
                        if nxt is not None:
                            self._schedule(reg, nxt if nxt > cycle else cycle + 1)
                if self._timing:
                    name = phase.name
                    self.phase_seconds[name] = self.phase_seconds.get(
                        name, 0.0
                    ) + (time.perf_counter() - start)
                    self.phase_ticks[name] = (
                        self.phase_ticks.get(name, 0) + ticked
                    )
                continue
            ticked_count = 0
            for reg in pending:
                component = reg.component
                if component.has_work():
                    if tracer is not None:
                        tracer(cycle, phase.name, component)
                    if per_component:
                        t0 = time.perf_counter()
                        component.tick(cycle)
                        key = (phase.name, component_label(component))
                        self.component_seconds[key] = self.component_seconds.get(
                            key, 0.0
                        ) + (time.perf_counter() - t0)
                        self.component_ticks[key] = (
                            self.component_ticks.get(key, 0) + 1
                        )
                    else:
                        component.tick(cycle)
                    ticked_count += 1
                    self.component_wakes += 1
                    ticked = True
                else:
                    self.wakes_skipped += 1
                    ticked = False
                fn = reg.next_wake_fn
                if fn is not None:
                    nxt = fn(cycle)
                    if nxt is not None:
                        self._schedule(reg, nxt if nxt > cycle else cycle + 1)
                elif ticked and component.has_work():
                    self._schedule(reg, cycle + 1)
            if self._timing:
                name = phase.name
                self.phase_seconds[name] = self.phase_seconds.get(
                    name, 0.0
                ) + (time.perf_counter() - start)
                self.phase_ticks[name] = (
                    self.phase_ticks.get(name, 0) + ticked_count
                )
        self._sweep_index = None
        return cycle

    def _step_tick_all(self, cycle: int) -> int:
        for phase in self._phases:
            for component in phase.components:
                if component.has_work():
                    component.tick(cycle)
                    self.component_wakes += 1
                else:
                    self.wakes_skipped += 1
        return cycle

    def _step_instrumented(self, cycle: int) -> int:
        tracer = self._tracer
        per_component = self._component_timing
        for phase in self._phases:
            start = time.perf_counter() if self._timing else 0.0
            ticked = 0
            for component in phase.components:
                if component.has_work():
                    if tracer is not None:
                        tracer(cycle, phase.name, component)
                    if per_component:
                        t0 = time.perf_counter()
                        component.tick(cycle)
                        key = (phase.name, component_label(component))
                        self.component_seconds[key] = self.component_seconds.get(
                            key, 0.0
                        ) + (time.perf_counter() - t0)
                        self.component_ticks[key] = (
                            self.component_ticks.get(key, 0) + 1
                        )
                    else:
                        component.tick(cycle)
                    ticked += 1
                    self.component_wakes += 1
                else:
                    self.wakes_skipped += 1
            if self._timing:
                name = phase.name
                self.phase_seconds[name] = self.phase_seconds.get(
                    name, 0.0
                ) + (time.perf_counter() - start)
                self.phase_ticks[name] = self.phase_ticks.get(name, 0) + ticked
        return cycle

    def run(
        self,
        until: Callable[[], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Step until ``until()`` is True; returns cycles stepped.

        Raises :class:`RuntimeError` after ``max_cycles`` steps without the
        predicate holding (the caller attaches its own wedge diagnostics).
        """
        start = self.cycle
        while not until():
            self.step()
            if max_cycles is not None and self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"kernel exceeded {max_cycles} cycles without reaching "
                    "the stop condition"
                )
        return self.cycle - start

    # -- checkpointing ------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Versioned scheduling state: clock, wakeup heap, active sets.

        Components are identified positionally — ``(phase index,
        registration order)`` — so a snapshot only restores onto a kernel
        whose phases and components were registered in the identical
        order (which deterministic construction guarantees).  Heap
        entries are captured verbatim, stale ones included: a stale entry
        firing late is part of the schedule's observable behaviour.
        """
        state: Dict[str, object] = {
            "version": 1,
            "cycle": self.cycle,
            "event_driven": self._event_driven,
            "mode": self.mode,
            "cycles_total": self.cycles_total,
            "component_wakes": self.component_wakes,
            "wakes_skipped": self.wakes_skipped,
            "batch_sweeps": self.batch_sweeps,
            "batch_fast_ticks": self.batch_fast_ticks,
            "batch_fallback_ticks": self.batch_fallback_ticks,
            "seq": self._seq,
        }
        if self._event_driven:
            regs = []
            for phase in self._phases:
                for component in phase.components:
                    reg = self._reg_of[id(component)]
                    assert reg is not None
                    regs.append(
                        (phase.index, reg.order, reg.heap_due,
                         reg.queued_for, reg.queued_next)
                    )
            state["regs"] = regs
            state["heap"] = [
                (due, seq, reg.phase.index, reg.order)
                for due, seq, reg in self._heap
            ]
            state["pending"] = [
                [reg.order for reg in phase.pending] for phase in self._phases
            ]
            state["pending_next"] = [
                [reg.order for reg in phase.pending_next]
                for phase in self._phases
            ]
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Load a :meth:`snapshot` onto an identically-constructed kernel."""
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported kernel snapshot version {state.get('version')!r}"
            )
        saved_mode = state.get(
            "mode", "event" if state["event_driven"] else "tick"
        )
        if bool(state["event_driven"]) != self._event_driven:
            saved_mode = "event" if state["event_driven"] else "tick"
        if saved_mode != self.mode:
            raise ValueError(
                "kernel mode mismatch: snapshot was taken under "
                f"{saved_mode!r} scheduling; restore under the same "
                "REPRO_KERNEL_MODE"
            )
        self.cycle = state["cycle"]
        self.cycles_total = state["cycles_total"]
        self.component_wakes = state["component_wakes"]
        self.wakes_skipped = state["wakes_skipped"]
        self.batch_sweeps = state.get("batch_sweeps", 0)
        self.batch_fast_ticks = state.get("batch_fast_ticks", 0)
        self.batch_fallback_ticks = state.get("batch_fallback_ticks", 0)
        self._seq = state["seq"]
        self._sweep_index = None
        if not self._event_driven:
            return
        reg_at: Dict[Tuple[int, int], _Scheduled] = {}
        for phase in self._phases:
            for component in phase.components:
                reg = self._reg_of[id(component)]
                assert reg is not None
                reg_at[(phase.index, reg.order)] = reg
        saved_regs = state["regs"]
        if len(saved_regs) != len(reg_at):
            raise ValueError(
                "kernel snapshot does not match this schedule: "
                f"{len(saved_regs)} saved registrations, "
                f"{len(reg_at)} present"
            )
        for pi, order, heap_due, queued_for, queued_next in saved_regs:
            reg = reg_at[(pi, order)]
            reg.heap_due = heap_due
            reg.queued_for = queued_for
            reg.queued_next = queued_next
        heap = [
            (due, seq, reg_at[(pi, order)])
            for due, seq, pi, order in state["heap"]
        ]
        # The captured list was already heap-ordered; heapify is a cheap
        # belt-and-braces against hand-edited snapshots.
        heapq.heapify(heap)
        self._heap = heap
        for phase, orders in zip(self._phases, state["pending"]):
            phase.pending = [reg_at[(phase.index, o)] for o in orders]
        for phase, orders in zip(self._phases, state["pending_next"]):
            phase.pending_next = [reg_at[(phase.index, o)] for o in orders]

    # -- diagnostics --------------------------------------------------------
    def kernel_counters(self) -> Dict[str, int]:
        """Idle-efficiency counters — the ``kernel`` stat group.

        ``component_wakes`` is the number of component visits that
        actually ticked; ``wakes_skipped`` counts visits gated off by
        ``has_work()`` (in tick-all mode: every poll of an idle
        component).  The tick-everything cost this kernel replaced is
        ``cycles_total × registered components``.

        The ``batch_*`` counters only move under ``mode="batch"``: driven
        phase sweeps, router visits served by the fused fast path, and
        per-router fallbacks to the scalar ``tick()``.
        """
        return {
            "cycles_total": self.cycles_total,
            "component_wakes": self.component_wakes,
            "wakes_skipped": self.wakes_skipped,
            "batch_sweeps": self.batch_sweeps,
            "batch_fast_ticks": self.batch_fast_ticks,
            "batch_fallback_ticks": self.batch_fallback_ticks,
        }

    def idle(self) -> bool:
        """True when no component (active or passive) reports work."""
        return not self.busy_components()

    def busy_components(self) -> List[Tuple[str, Component]]:
        """Every component currently reporting work, with its phase name.

        Ordering is deterministic: active components in schedule order
        (phase order, then registration order within the phase), followed
        by passive components sorted by phase name (registration order
        within a name) — so wedge reports diff cleanly across runs.
        """
        busy = [
            (phase.name, component)
            for phase in self._phases
            for component in phase.components
            if component.has_work()
        ]
        busy.extend(
            (phase, component)
            for phase, component in sorted(
                self._passive, key=lambda item: item[0]
            )
            if component.has_work()
        )
        return busy

    def describe(self) -> str:
        """A schedule + instrumentation summary (debug aid).

        One line per phase (component/busy counts), one per passive phase,
        plus the scheduler's active-set fraction, the instrumentation
        state (timing/tracer) and any subsystem :attr:`annotations`
        (e.g. the telemetry sampler's window setting).
        """
        lines = [f"cycle {self.cycle}"]
        active_slots = sum(len(p.components) for p in self._phases)
        visits = self.component_wakes + self.wakes_skipped
        denom = self.cycles_total * active_slots
        fraction = visits / denom if denom else 0.0
        mode_name = {
            "tick": "tick-all", "event": "event-driven", "batch": "batched",
        }[self.mode]
        lines.append(
            f"  kernel: {mode_name}"
            + f", {self.cycles_total} cycles, "
            f"{self.component_wakes} wakes ({self.wakes_skipped} skipped), "
            f"active-set fraction {fraction:.1%}"
        )
        lines.append(
            "  instrumentation: timing="
            + ("on" if self._timing else "off")
            + (
                " (per-component)"
                if self._component_timing
                else ""
            )
            + ", tracer="
            + ("set" if self._tracer is not None else "none")
        )
        for key in sorted(self.annotations):
            lines.append(f"  {key}: {self.annotations[key]}")
        for phase in self._phases:
            lines.append(
                f"  {phase.name}: {len(phase.components)} components, "
                f"{sum(1 for c in phase.components if c.has_work())} busy"
            )
        passive_phases: Dict[str, List[Component]] = {}
        for phase_name, component in self._passive:
            passive_phases.setdefault(phase_name, []).append(component)
        for phase_name in sorted(passive_phases):
            components = passive_phases[phase_name]
            busy = sum(1 for c in components if c.has_work())
            lines.append(
                f"  {phase_name} (passive): {len(components)} tracked, "
                f"{busy} busy"
            )
        return "\n".join(lines)
