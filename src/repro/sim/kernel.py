"""The simulation kernel: one clock, phase-ordered components, one loop.

A :class:`SimKernel` owns the global cycle counter and an ordered list of
*phases*; each phase holds the components ticked during it.  ``step()``
advances the clock by one and ticks every active component phase by phase
— the stage ordering the hand-written loops used to encode positionally
(network frame setup → arrival delivery → routers → NIs → local delivery
→ CMP events → tiles) becomes explicit, named, and extensible: a subsystem
joins the simulation by registering components, not by editing the loop.

Instrumentation is opt-in and zero-cost when off: ``enable_timing()``
accumulates wall-clock per phase (for profiling the simulator itself —
never visible to the simulation), and ``set_tracer()`` streams
``(cycle, phase, component)`` tick events to a callback, which is how a
wedged simulation can be replayed component-by-component.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.component import Component
from repro.sim.stats import StatsRegistry

Tracer = Callable[[int, str, Component], None]


class Phase:
    """One named stage of the per-cycle loop."""

    __slots__ = ("name", "components")

    def __init__(self, name: str):
        self.name = name
        self.components: List[Component] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Phase({self.name!r}, {len(self.components)} components)"


class SimKernel:
    """Global clock + phase-ordered component schedule + stats registry."""

    def __init__(self) -> None:
        self.cycle = 0
        self.stats = StatsRegistry()
        self._phases: List[Phase] = []
        self._phase_by_name: Dict[str, Phase] = {}
        #: Registered but never ticked (reactive state-holders); they count
        #: for idle detection and wedge snapshots only.
        self._passive: List[Tuple[str, Component]] = []
        self._timing = False
        self._tracer: Optional[Tracer] = None
        self.phase_seconds: Dict[str, float] = {}
        self.phase_ticks: Dict[str, int] = {}

    # -- registration -------------------------------------------------------
    def add_phase(self, name: str, *, before: Optional[str] = None) -> Phase:
        """Append a phase (or insert it before an existing one).

        Re-adding an existing name returns the existing phase, so
        independent subsystems can share a phase by agreeing on its name.
        """
        existing = self._phase_by_name.get(name)
        if existing is not None:
            return existing
        phase = Phase(name)
        if before is not None:
            anchor = self._phase_by_name.get(before)
            if anchor is None:
                raise KeyError(f"no phase named {before!r}")
            self._phases.insert(self._phases.index(anchor), phase)
        else:
            self._phases.append(phase)
        self._phase_by_name[name] = phase
        return phase

    def register(
        self, component: Component, phase: str = "main", *, tick: bool = True
    ) -> None:
        """Add a component to a phase (creating the phase at the end of the
        current order if needed).  ``tick=False`` registers a passive
        component: tracked for diagnostics, never ticked."""
        if not tick:
            self._passive.append((phase, component))
            return
        self.add_phase(phase).components.append(component)

    def phases(self) -> Tuple[str, ...]:
        return tuple(phase.name for phase in self._phases)

    def components(self, phase: Optional[str] = None) -> List[Component]:
        if phase is not None:
            return list(self._phase_by_name[phase].components)
        return [c for p in self._phases for c in p.components]

    # -- instrumentation ----------------------------------------------------
    def enable_timing(self, enabled: bool = True) -> None:
        """Accumulate wall-clock seconds + tick counts per phase.

        Profiling of the simulator, not the simulation: it cannot change
        simulated behaviour, only report where host time goes.
        """
        self._timing = enabled

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Stream every component tick as ``(cycle, phase, component)``."""
        self._tracer = tracer

    # -- the loop -----------------------------------------------------------
    def step(self) -> int:
        """Advance one cycle; returns the new cycle number."""
        self.cycle += 1
        cycle = self.cycle
        if self._timing or self._tracer is not None:
            return self._step_instrumented(cycle)
        for phase in self._phases:
            for component in phase.components:
                if component.has_work():
                    component.tick(cycle)
        return cycle

    def _step_instrumented(self, cycle: int) -> int:
        tracer = self._tracer
        for phase in self._phases:
            start = time.perf_counter() if self._timing else 0.0
            ticked = 0
            for component in phase.components:
                if component.has_work():
                    if tracer is not None:
                        tracer(cycle, phase.name, component)
                    component.tick(cycle)
                    ticked += 1
            if self._timing:
                name = phase.name
                self.phase_seconds[name] = self.phase_seconds.get(
                    name, 0.0
                ) + (time.perf_counter() - start)
                self.phase_ticks[name] = self.phase_ticks.get(name, 0) + ticked
        return cycle

    def run(
        self,
        until: Callable[[], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Step until ``until()`` is True; returns cycles stepped.

        Raises :class:`RuntimeError` after ``max_cycles`` steps without the
        predicate holding (the caller attaches its own wedge diagnostics).
        """
        start = self.cycle
        while not until():
            self.step()
            if max_cycles is not None and self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"kernel exceeded {max_cycles} cycles without reaching "
                    "the stop condition"
                )
        return self.cycle - start

    # -- diagnostics --------------------------------------------------------
    def idle(self) -> bool:
        """True when no component (active or passive) reports work."""
        return not self.busy_components()

    def busy_components(self) -> List[Tuple[str, Component]]:
        """Every component currently reporting work, with its phase name."""
        busy = [
            (phase.name, component)
            for phase in self._phases
            for component in phase.components
            if component.has_work()
        ]
        busy.extend(
            (phase, component)
            for phase, component in self._passive
            if component.has_work()
        )
        return busy

    def describe(self) -> str:
        """A one-line-per-phase schedule summary (debug aid)."""
        lines = [f"cycle {self.cycle}"]
        for phase in self._phases:
            lines.append(
                f"  {phase.name}: {len(phase.components)} components, "
                f"{sum(1 for c in phase.components if c.has_work())} busy"
            )
        if self._passive:
            busy = sum(1 for _, c in self._passive if c.has_work())
            lines.append(f"  (passive): {len(self._passive)} tracked, {busy} busy")
        return "\n".join(lines)
