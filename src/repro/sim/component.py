"""The component protocol the kernel schedules.

A *component* is anything with per-cycle behaviour: a router, a network
interface, the arrival queue, a tile, the CMP event queue.  The kernel
only ever asks two things of it:

- ``has_work()`` — a cheap idle test.  Every kernel visit re-checks it
  before ticking (so spurious wakeups are harmless), and the same
  predicate feeds the kernel's idle/wedge diagnostics.
- ``tick(cycle)`` — advance one cycle.  The kernel passes the cycle it is
  executing so components need not reach back into a shared clock.

A component may additionally implement the *idleness contract* hook:

- ``next_wake(cycle)`` — called after every visit; returns the next
  cycle the component needs service, or ``None`` to sleep until a
  producer calls :meth:`~repro.sim.kernel.SimKernel.wake`.  Without it
  the default contract applies: busy components are revisited next
  cycle, idle ones sleep.  Components relying on the default must be
  woken by their producers at every idle→busy transition (a router when
  a flit arrives, an NI when a packet is injected...).

Purely *reactive* state-holders (NUCA banks, the memory controller — they
act only when a message or scheduled event calls into them) still register
with the kernel as **passive** components (``passive=True``): they are
never scheduled — waking one raises — but their ``has_work()``
participates in wedge snapshots so a stuck simulation can name the
component holding state.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Component(Protocol):
    """Anything the kernel can schedule."""

    def has_work(self) -> bool:
        """Cheap idle test; False lets the kernel skip ``tick`` this cycle."""
        ...

    def tick(self, cycle: int) -> None:
        """Advance one cycle."""
        ...


class CallbackComponent:
    """Adapt a bare callable into a :class:`Component`.

    Useful for per-cycle housekeeping steps that are not objects in their
    own right (e.g. the network's start-of-cycle token refill).  Runs every
    cycle unless ``has_work_fn`` is given.
    """

    __slots__ = ("label", "_fn", "_has_work_fn")

    def __init__(
        self,
        fn: Callable[[int], None],
        label: str = "callback",
        has_work_fn: Optional[Callable[[], bool]] = None,
    ):
        self._fn = fn
        self.label = label
        self._has_work_fn = has_work_fn

    def has_work(self) -> bool:
        if self._has_work_fn is not None:
            return self._has_work_fn()
        return True

    def tick(self, cycle: int) -> None:
        self._fn(cycle)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CallbackComponent({self.label})"
