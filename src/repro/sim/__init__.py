"""The unified simulation kernel.

Every cycle-level simulator in this repo (the standalone NoC, the full CMP
system) used to hand-roll its own clock and tick loop.  ``repro.sim``
factors that out:

- :class:`~repro.sim.component.Component` — the protocol a simulatable
  object implements (``has_work()`` / ``tick(cycle)``);
- :class:`~repro.sim.kernel.SimKernel` — the global clock plus
  phase-ordered component registration and the single ``step()`` loop;
- :class:`~repro.sim.stats.StatsRegistry` — named, mergeable counter
  groups sampled into :class:`~repro.sim.stats.CounterSnapshot` objects
  (full-run and post-warmup views of the same registry).

The kernel is deliberately free of wall-clock and randomness: stepping a
kernel twice from the same component state produces bit-identical results,
which is what lets the parallel experiment runner
(:mod:`repro.experiments.runner`) promise serial/parallel equivalence.
"""

from repro.sim.component import CallbackComponent, Component
from repro.sim.kernel import Phase, SimKernel
from repro.sim.stats import CounterSnapshot, StatsRegistry, merge_snapshots

__all__ = [
    "CallbackComponent",
    "Component",
    "CounterSnapshot",
    "Phase",
    "SimKernel",
    "StatsRegistry",
    "merge_snapshots",
]
