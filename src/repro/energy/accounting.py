"""Energy accounting: price simulator event counters into joules.

``compute_energy`` consumes a :class:`repro.cmp.system.SimulationResult`
(or any compatible counter dict + structural info) and produces the Fig. 7
breakdown: NoC dynamic/leakage, NUCA dynamic/leakage, compressor
dynamic/leakage, optional DRAM.  Leakage integrates over the *measured*
(post-warmup) cycles so scheme runtime differences show up, exactly as the
paper's "accelerated performance" energy channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.energy.params import EnergyParams


@dataclass
class EnergyBreakdown:
    """Energy components in picojoules."""

    noc_dynamic: float = 0.0
    noc_leakage: float = 0.0
    cache_dynamic: float = 0.0
    cache_leakage: float = 0.0
    compressor_dynamic: float = 0.0
    compressor_leakage: float = 0.0
    dram: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.noc_dynamic
            + self.noc_leakage
            + self.cache_dynamic
            + self.cache_leakage
            + self.compressor_dynamic
            + self.compressor_leakage
            + self.dram
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "noc_dynamic": self.noc_dynamic,
            "noc_leakage": self.noc_leakage,
            "cache_dynamic": self.cache_dynamic,
            "cache_leakage": self.cache_leakage,
            "compressor_dynamic": self.compressor_dynamic,
            "compressor_leakage": self.compressor_leakage,
            "dram": self.dram,
            "total": self.total,
        }


def _engine_count(scheme_name: str, n_routers: int) -> int:
    """How many compressor engine instances leak, per scheme (§4.3).

    CC places one per bank; CNC one per bank *and* one per NI (the doubled
    area the paper says DISCO halves); DISCO one per router.  The baseline
    has none; 'ideal' is a normalization fiction charged like CC.
    """
    if scheme_name == "baseline":
        return 0
    if scheme_name in ("cc", "ideal"):
        return n_routers  # one bank per tile
    if scheme_name == "cnc":
        return 2 * n_routers  # bank + NI per tile
    if scheme_name == "disco":
        return n_routers
    raise KeyError(f"unknown scheme {scheme_name!r}")


def compute_energy(
    counters: Dict[str, int],
    cycles: int,
    n_routers: int,
    scheme_name: str,
    algorithm: str,
    params: Optional[EnergyParams] = None,
) -> EnergyBreakdown:
    """Price one run's counters.

    ``counters`` is ``SimulationResult.counters_measured`` (steady state)
    or ``counters_full``; ``cycles`` must be the matching cycle count.
    """
    p = params or EnergyParams()
    out = EnergyBreakdown()

    # -- NoC -----------------------------------------------------------------
    out.noc_dynamic = (
        counters.get("buffer_writes", 0) * p.buffer_write_pj
        + counters.get("buffer_reads", 0) * p.buffer_read_pj
        + counters.get("crossbar_flits", 0) * p.crossbar_pj
        + counters.get("link_flits", 0) * p.link_pj
        + (counters.get("sa_grants", 0) + counters.get("va_grants", 0))
        * p.arbitration_pj
    )
    out.noc_leakage = cycles * n_routers * p.router_leak_pj_per_cycle

    # -- NUCA banks -------------------------------------------------------------
    out.cache_dynamic = (
        counters.get("bank_tag_lookups", 0) * p.bank_tag_pj
        + counters.get("bank_segments_read", 0) * p.bank_segment_pj
        + counters.get("bank_segments_written", 0)
        * p.bank_segment_pj
        * p.bank_write_factor
    )
    out.cache_leakage = cycles * n_routers * p.bank_leak_pj_per_cycle

    # -- compressors -----------------------------------------------------------
    comp_pj, decomp_pj, leak_pj = p.compressor_constants(algorithm)
    compressions = (
        counters.get("router_compressions", 0)
        + counters.get("ni_compressions", 0)
        + counters.get("bank_compressions", 0)
    )
    decompressions = (
        counters.get("router_decompressions", 0)
        + counters.get("ni_decompressions", 0)
        + counters.get("bank_decompressions", 0)
    )
    out.compressor_dynamic = compressions * comp_pj + decompressions * decomp_pj
    out.compressor_leakage = (
        cycles * _engine_count(scheme_name, n_routers) * leak_pj
    )

    # -- DRAM (optional; outside the paper's Fig. 7 subsystem) -----------------
    if p.include_dram:
        accesses = counters.get("memory_reads", 0) + counters.get(
            "memory_writes", 0
        )
        out.dram = accesses * p.dram_access_pj
    return out


def energy_of_result(result, params: Optional[EnergyParams] = None,
                     measured: bool = True) -> EnergyBreakdown:
    """Convenience wrapper over a :class:`SimulationResult`."""
    counters = result.counters_measured if measured else result.counters_full
    cycles = result.measured_cycles if measured else result.cycles
    return compute_energy(
        counters,
        cycles,
        result.n_routers,
        result.scheme,
        result.algorithm,
        params,
    )
