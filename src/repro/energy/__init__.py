"""Energy and area models (the Orion 2.0 / CACTI / synthesis substitution).

Event-based accounting: the simulator counts events (flit hops, buffer
accesses, bank segment reads, compressor operations, DRAM accesses) and
this package prices them with 45 nm-class constants, plus leakage
integrated over the measured runtime.  The structural area model reproduces
the §4.3 overhead analysis (delta compressor + arbitrator ≈ 17 % of a
3-stage 64-bit router, <1 % of a 4 MB NUCA cache).
"""

from repro.energy.params import EnergyParams
from repro.energy.accounting import (
    EnergyBreakdown,
    compute_energy,
    energy_of_result,
)
from repro.energy.area import (
    AreaReport,
    router_area_um2,
    compressor_area_um2,
    cache_area_um2,
    overhead_report,
)

__all__ = [
    "EnergyParams",
    "EnergyBreakdown",
    "compute_energy",
    "energy_of_result",
    "AreaReport",
    "router_area_um2",
    "compressor_area_um2",
    "cache_area_um2",
    "overhead_report",
]
