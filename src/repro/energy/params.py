"""45 nm-class energy constants.

Magnitudes follow the published Orion 2.0 / CACTI ballpark for a 2 GHz
tiled CMP with 64-bit flits and 256 KB NUCA banks.  All dynamic energies
are picojoules per event; leakage is picojoules per cycle per instance
(1 mW at 2 GHz = 0.5 pJ/cycle).  Every scheme is priced with the same
constants, so the Fig. 7 comparisons depend only on event counts and
runtime, not on the absolute calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


#: Per-operation compressor energy (compress pJ, decompress pJ) and engine
#: leakage (pJ/cycle), keyed by algorithm.  Scaled with the Table 1
#: hardware-overhead column: pattern-table schemes burn more than the
#: adder-only delta datapath.
COMPRESSOR_ENERGY: Dict[str, Tuple[float, float, float]] = {
    "delta": (6.0, 4.0, 0.55),
    "bdi": (6.0, 4.0, 0.55),
    "fpc": (11.0, 9.0, 1.30),
    "sfpc": (9.0, 7.0, 1.00),
    "cpack": (13.0, 11.0, 1.50),
    "sc2": (16.0, 13.0, 1.80),
    "fvc": (5.0, 4.0, 0.40),
    "zero": (2.0, 1.5, 0.20),
}


@dataclass(frozen=True)
class EnergyParams:
    """Tunable energy constants (defaults: 45 nm, 2 GHz)."""

    # -- NoC dynamic (pJ per event; Orion-2.0-like, 64-bit datapath) -----
    buffer_write_pj: float = 1.2
    buffer_read_pj: float = 1.0
    crossbar_pj: float = 1.9
    arbitration_pj: float = 0.12
    link_pj: float = 1.6  # 1 mm link, one flit

    # -- NoC leakage -----------------------------------------------------
    router_leak_pj_per_cycle: float = 4.0  # ~8 mW per 5-port VC router

    # -- NUCA bank dynamic (CACTI-like, 256 KB bank, 8-byte segments) ----
    bank_tag_pj: float = 22.0
    bank_segment_pj: float = 38.0  # per 8-byte segment read/written
    bank_write_factor: float = 1.15

    # -- NUCA leakage ------------------------------------------------------
    bank_leak_pj_per_cycle: float = 16.0  # ~32 mW per 256 KB bank

    # -- DRAM (per line transfer; excluded from the Fig. 7 subsystem) ----
    dram_access_pj: float = 18_000.0
    include_dram: bool = False

    # -- compressor engines ------------------------------------------------
    compressor_energy: Dict[str, Tuple[float, float, float]] = field(
        default_factory=lambda: dict(COMPRESSOR_ENERGY)
    )

    def compressor_constants(self, algorithm: str) -> Tuple[float, float, float]:
        try:
            return self.compressor_energy[algorithm]
        except KeyError:
            raise KeyError(
                f"no compressor energy constants for {algorithm!r}"
            ) from None
