"""Structural area model for the §4.3 overhead analysis.

The paper synthesized the DISCO router in FreePDK45 and reports three
numbers: the delta compressor + arbitrator add **17.2 %** to a 3-stage
64-bit router; relative to a 4 MB NUCA cache that is **< 1 %**; and CNC
(bank + NI compressors on every tile) needs roughly **2x** DISCO's
compressor area.  This module reproduces those ratios from structural
bit/gate counts with 45 nm-class density constants, so they scale correctly
with flit width, VC depth and mesh size rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.noc.config import NocConfig

# -- 45 nm density constants (um^2) ------------------------------------------
#: SRAM/register-file bit including surrounding overhead.
_BUFFER_BIT_UM2 = 4.5
#: One crosspoint worth of wiring+mux per bit of datapath.
_XBAR_BIT_UM2 = 12.0
#: A NAND2-equivalent gate.
_ROUTER_GATE_UM2 = 3.2
#: Compressor/arbitrator datapaths place-and-route denser (regular adder
#: lanes vs. control logic).
_GATE_UM2 = 0.8
#: Cache SRAM density (includes tags/decoders amortized).
_CACHE_BIT_UM2 = 0.55

#: Allocator/control logic gate counts for a 5-port VC router.
_RC_GATES = 900
_VA_GATES_PER_VC = 260
_SA_GATES_PER_PORT = 420

#: DISCO arbitrator: packet filter + confidence counters (Fig. 3) —
#: comparators and small adders per input VC plus threshold registers.
_ARBITRATOR_GATES_PER_VC = 200
_ARBITRATOR_BASE_GATES = 600

#: Compressor datapath gate counts per algorithm (Fig. 4-style delta is a
#: few 64-bit adder/comparator lanes; FPC needs pattern encoders per word;
#: SC2 carries Huffman tables; C-Pack a dictionary CAM).
_COMPRESSOR_GATES: Dict[str, int] = {
    "delta": 7_500,
    "bdi": 8_000,
    "fpc": 16_000,
    "sfpc": 12_000,
    "cpack": 22_000,
    "sc2": 26_000,
    "fvc": 6_000,
    "zero": 2_500,
}
#: Staging/output registers of an engine, in flits.
_ENGINE_STAGING_FLITS = 10


@dataclass(frozen=True)
class AreaReport:
    """The §4.3 numbers, computed structurally."""

    router_um2: float
    compressor_um2: float
    arbitrator_um2: float
    cache_um2: float
    router_overhead: float  # (compressor+arbitrator)/router
    cache_overhead: float  # vs the whole NUCA cache
    cnc_compressor_um2: float  # bank + NI engines per tile
    disco_vs_cnc_area: float  # DISCO engines / CNC engines

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_um2": self.router_um2,
            "compressor_um2": self.compressor_um2,
            "arbitrator_um2": self.arbitrator_um2,
            "cache_um2": self.cache_um2,
            "router_overhead": self.router_overhead,
            "cache_overhead": self.cache_overhead,
            "cnc_compressor_um2": self.cnc_compressor_um2,
            "disco_vs_cnc_area": self.disco_vs_cnc_area,
        }


def router_area_um2(config: NocConfig) -> float:
    """Area of one baseline 3-stage VC router."""
    ports = 5
    flit_bits = 8 * config.flit_bytes
    buffer_bits = ports * config.vcs_per_port * config.vc_depth * flit_bits
    buffers = buffer_bits * _BUFFER_BIT_UM2
    crossbar = ports * ports * flit_bits * _XBAR_BIT_UM2
    control = (
        _RC_GATES
        + ports * config.vcs_per_port * _VA_GATES_PER_VC
        + ports * _SA_GATES_PER_PORT
    ) * _ROUTER_GATE_UM2
    return buffers + crossbar + control


def compressor_area_um2(algorithm: str, config: NocConfig) -> float:
    """Area of one DISCO engine (datapath + staging registers)."""
    gates = _COMPRESSOR_GATES.get(algorithm)
    if gates is None:
        raise KeyError(f"no area model for algorithm {algorithm!r}")
    datapath = gates * _GATE_UM2
    staging = (
        _ENGINE_STAGING_FLITS * 8 * config.flit_bytes * _BUFFER_BIT_UM2
    )
    return datapath + staging


def arbitrator_area_um2(config: NocConfig) -> float:
    """Area of the DISCO arbitrator (Fig. 3)."""
    vcs = 5 * config.vcs_per_port
    gates = _ARBITRATOR_BASE_GATES + vcs * _ARBITRATOR_GATES_PER_VC
    return gates * _GATE_UM2


def cache_area_um2(capacity_bytes: int) -> float:
    """Area of a NUCA cache of the given capacity (data + tag overhead)."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    bits = capacity_bytes * 8 * 1.07  # ~7% tag/valid overhead
    return bits * _CACHE_BIT_UM2


def overhead_report(
    algorithm: str = "delta",
    config: NocConfig = None,
    cache_capacity_bytes: int = 4 * 1024 * 1024,
    n_tiles: int = 16,
) -> AreaReport:
    """Reproduce the §4.3 overhead estimation."""
    config = config or NocConfig()
    router = router_area_um2(config)
    compressor = compressor_area_um2(algorithm, config)
    arbitrator = arbitrator_area_um2(config)
    cache = cache_area_um2(cache_capacity_bytes)
    disco_added = compressor + arbitrator
    # CNC: a bank-side engine plus an NI-side engine on every tile; DISCO:
    # one in-router engine (+ arbitrator) per tile.
    cnc_per_tile = 2 * compressor
    disco_per_tile = disco_added
    return AreaReport(
        router_um2=router,
        compressor_um2=compressor,
        arbitrator_um2=arbitrator,
        cache_um2=cache,
        router_overhead=disco_added / router,
        cache_overhead=(disco_added * n_tiles) / cache,
        cnc_compressor_um2=cnc_per_tile,
        disco_vs_cnc_area=disco_per_tile / cnc_per_tile,
    )
