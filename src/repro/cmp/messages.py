"""Protocol messages of the cache-coherent CMP (§3.3-C packet classes).

Request packets carry commands to banks / the memory controller; response
packets carry cache blocks (and are the only compressible class, §3.3-C);
coherence packets carry invalidations/acks/recalls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.noc.flit import PacketType


class MessageKind(enum.Enum):
    """All protocol message kinds."""

    GETS = "gets"  # L1 -> home: read request
    GETX = "getx"  # L1 -> home: write/upgrade request
    DATA = "data"  # home -> L1: data response (grants S or M)
    WB_DATA = "wb_data"  # L1 -> home: dirty writeback
    WB_ACK = "wb_ack"  # home -> L1: writeback consumed (precise WB tracking)
    INV = "inv"  # home -> L1: invalidate
    INV_ACK = "inv_ack"  # L1 -> home: invalidation acknowledged
    RECALL = "recall"  # home -> owner L1: return the M line
    RECALL_DATA = "recall_data"  # owner L1 -> home: recalled line
    RECALL_NACK = "recall_nack"  # owner L1 -> home: line already left (WB races)
    MEM_READ = "mem_read"  # home -> MC
    MEM_DATA = "mem_data"  # MC -> home
    MEM_WB = "mem_wb"  # home -> MC: dirty LLC eviction

    @property
    def packet_type(self) -> PacketType:
        if self in _DATA_KINDS:
            return PacketType.RESPONSE
        if self in (MessageKind.GETS, MessageKind.GETX, MessageKind.MEM_READ):
            return PacketType.REQUEST
        return PacketType.COHERENCE

    @property
    def carries_data(self) -> bool:
        return self in _DATA_KINDS


_DATA_KINDS = frozenset(
    {
        MessageKind.DATA,
        MessageKind.WB_DATA,
        MessageKind.RECALL_DATA,
        MessageKind.MEM_DATA,
        MessageKind.MEM_WB,
    }
)

#: Data-carrying messages whose *destination* consumes the raw line
#: (cores fill MSHRs, DRAM stores raw lines); the rest (bank-bound data)
#: may arrive compressed under DISCO.
_RAW_AT_DST = frozenset({MessageKind.DATA, MessageKind.MEM_WB})


@dataclass
class Message:
    """One protocol message (becomes ``Packet.msg``)."""

    kind: MessageKind
    addr: int
    src: int  # node id
    dst: int  # node id
    requester: int = -1  # original requesting core's node (for DATA routing)
    data: Optional[bytes] = None
    grant_state: str = ""  # "S" or "M" on DATA
    issue_cycle: int = -1

    @property
    def needs_raw_at_dst(self) -> bool:
        return self.kind in _RAW_AT_DST

    def __post_init__(self) -> None:
        if self.kind.carries_data and self.data is None:
            raise ValueError(f"{self.kind.value} message requires data")
