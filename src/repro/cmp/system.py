"""The full CMP system: wiring, the simulation loop, and results.

``CmpSystem`` builds the NoC (with DISCO routers when the scheme asks for
them), one tile + home bank per node, and the memory controller — all on
one shared :class:`repro.sim.SimKernel`: the network contributes its five
phases, then the CMP layer appends ``cmp.events`` (scheduled bank/DRAM
callbacks) and ``cmp.tiles`` (core issue), with banks and the memory
controller registered passively (reactive state-holders, tracked for
wedge diagnostics).  Substrate counters are published as named groups on
the kernel's :class:`~repro.sim.stats.StatsRegistry`; the output is a
:class:`SimulationResult` holding the Fig. 5/6/8 latency metric plus two
registry snapshots — full-run and post-warmup — that the energy model
(Fig. 7) consumes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cmp.bank import HomeBank
from repro.cmp.config import SystemConfig
from repro.cmp.core_model import CoreModel
from repro.cmp.messages import Message, MessageKind
from repro.cmp.schemes import SchemePolicy
from repro.cmp.tile import Tile
from repro.cache.memory import MemoryController
from repro.core.disco_router import make_disco_router_factory
from repro.core.scheduling import baseline_priority, disco_priority
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.stats import NetworkStats
from repro.sim import CounterSnapshot, SimKernel
from repro.telemetry.profiler import RunProfile, profile_from_kernel
from repro.workloads.trace import TraceSet

#: Abort threshold: cycles without any core finishing progress.
_WATCHDOG_LIMIT = 4_000_000


@dataclass
class SimulationResult:
    """Everything one (scheme, workload) run produced.

    The substrate event counts live in two
    :class:`~repro.sim.stats.CounterSnapshot` registry snapshots — the
    full run and the post-warmup (steady-state) window — instead of loose
    fields; the historical scalar accessors (``bank_reads``,
    ``memory_writes``, ``llc_segment_occupancy``...) remain available as
    properties over ``snapshot_full``.
    """

    scheme: str
    algorithm: str
    workload: str
    cycles: int
    total_primary_misses: int
    total_miss_latency: int
    l1_hits: int
    l1_accesses: int
    network: Optional[NetworkStats] = None
    n_routers: int = 0
    measured_primary_misses: int = 0
    measured_miss_latency: int = 0
    measure_start_cycle: int = 0
    snapshot_full: CounterSnapshot = field(default_factory=CounterSnapshot)
    snapshot_measured: CounterSnapshot = field(default_factory=CounterSnapshot)
    #: Observability payload (:mod:`repro.telemetry`): sampler windows and
    #: raw trace events as plain dicts, when the run had telemetry on.
    #: ``None`` by default — excluded from digests, picklable for the
    #: runner's process pool and disk cache.
    telemetry: Optional[Dict] = None
    #: Per-component wall-clock attribution, when the run was profiled.
    profile: Optional[RunProfile] = None

    # -- registry views ------------------------------------------------------
    @property
    def counters_full(self) -> Dict[str, int]:
        """Flat view of the full-run registry snapshot."""
        return self.snapshot_full.flat()

    @property
    def counters_measured(self) -> Dict[str, int]:
        """Flat view of the steady-state (post-warmup) snapshot."""
        return self.snapshot_measured.flat()

    def _full(self, key: str) -> int:
        return int(self.snapshot_full.get_counter(key, 0))

    # -- metrics -------------------------------------------------------------
    @property
    def avg_miss_latency(self) -> float:
        """The paper's metric: average on-chip data access latency.

        Uses the post-warmup (steady-state) samples when a warmup region
        was configured, all misses otherwise.
        """
        if self.measured_primary_misses > 0:
            return self.measured_miss_latency / self.measured_primary_misses
        if self.total_primary_misses == 0:
            return 0.0
        return self.total_miss_latency / self.total_primary_misses

    @property
    def measured_cycles(self) -> int:
        return self.cycles - self.measure_start_cycle

    @property
    def l1_miss_rate(self) -> float:
        if self.l1_accesses == 0:
            return 0.0
        return 1.0 - self.l1_hits / self.l1_accesses

    @property
    def llc_miss_rate(self) -> float:
        lookups = self.bank_hits + self.bank_misses
        if lookups == 0:
            return 0.0
        return self.bank_misses / lookups

    # -- backward-compatible counter accessors -------------------------------
    @property
    def bank_reads(self) -> int:
        return self._full("bank_reads")

    @property
    def bank_writes(self) -> int:
        return self._full("bank_writes")

    @property
    def bank_tag_lookups(self) -> int:
        return self._full("bank_tag_lookups")

    @property
    def bank_segments_read(self) -> int:
        return self._full("bank_segments_read")

    @property
    def bank_segments_written(self) -> int:
        return self._full("bank_segments_written")

    @property
    def bank_hits(self) -> int:
        return self._full("bank_hits")

    @property
    def bank_misses(self) -> int:
        return self._full("bank_misses")

    @property
    def bank_compressions(self) -> int:
        return self._full("bank_compressions")

    @property
    def bank_decompressions(self) -> int:
        return self._full("bank_decompressions")

    @property
    def memory_reads(self) -> int:
        return self._full("memory_reads")

    @property
    def memory_writes(self) -> int:
        return self._full("memory_writes")

    @property
    def llc_resident_lines(self) -> int:
        return self._full("llc_resident_lines")

    @property
    def llc_segment_occupancy(self) -> float:
        total = self._full("llc_segments_total")
        if total == 0:
            return 0.0
        return self._full("llc_segments_used") / total


class EventQueue:
    """Scheduled callbacks (bank latencies, DRAM completions) — a kernel
    component ticked right after the network phases.

    Entries are ``(due, seq, fn, args)`` with ``fn`` a bound method and
    ``args`` plain data — never closures — so the queue is serializable by
    the snapshot protocol (the system path-encodes the bound methods)."""

    __slots__ = ("_events", "_seq")

    def __init__(self) -> None:
        self._events: List = []
        self._seq = 0

    def schedule(self, due: int, fn: Callable[..., None], *args) -> None:
        heapq.heappush(self._events, (due, self._seq, fn, args))
        self._seq += 1

    def next_due(self) -> Optional[int]:
        return self._events[0][0] if self._events else None

    def has_work(self) -> bool:
        return bool(self._events)

    def next_wake(self, cycle: int) -> Optional[int]:
        """Idleness contract: sleep until the earliest scheduled event
        (:meth:`CmpSystem.schedule` wakes the queue for new deadlines)."""
        return self._events[0][0] if self._events else None

    def tick(self, cycle: int) -> None:
        events = self._events
        while events and events[0][0] <= cycle:
            _, _, fn, args = heapq.heappop(events)
            fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventQueue({len(self._events)} scheduled)"


class _MemoryComponent:
    """Passive kernel registration for the DRAM controller: never
    scheduled (completions ride the event queue), but its busy state
    shows up in idle checks and wedge snapshots."""

    __slots__ = ("memory", "kernel")

    def __init__(self, memory: MemoryController, kernel: SimKernel):
        self.memory = memory
        self.kernel = kernel

    def has_work(self) -> bool:
        return self.memory.busy_banks(self.kernel.cycle) > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        busy = self.memory.busy_banks(self.kernel.cycle)
        return f"MemoryController({busy} banks busy)"


class CmpSystem:
    """One simulatable CMP instance (config x scheme x workload)."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: SchemePolicy,
        traces: TraceSet,
        warmup_fraction: float = 0.0,
        prefill: bool = True,
    ):
        if traces.n_cores != config.n_cores:
            raise ValueError(
                f"trace set has {traces.n_cores} cores, "
                f"config has {config.n_cores}"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.config = config
        self.scheme = scheme
        self.traces = traces
        self.warmup_fraction = warmup_fraction
        self.prefill = prefill
        self.pool = traces.pool
        self.algorithm = scheme.make_algorithm(config.line_size)
        # -- the shared kernel ------------------------------------------------
        #: One clock for everything: the network registers its phases first
        #: (frame/arrivals/routers/NIs/delivery), the CMP layer appends
        #: ``cmp.events`` and ``cmp.tiles`` below.
        self.kernel = SimKernel()
        # -- network --------------------------------------------------------
        router_factory = None
        if scheme.use_disco_routers:
            assert scheme.disco is not None
            router_factory = make_disco_router_factory(
                scheme.disco, self.algorithm
            )
        self.network = Network(
            config.noc, router_factory=router_factory, kernel=self.kernel
        )
        self.network.set_delivery_handler(self._on_packet)
        self.network.packet_priority = (
            disco_priority if scheme.use_disco_routers else baseline_priority
        )
        if scheme.ni_compression:
            self.network.inject_transform = self._cnc_inject
            self.network.eject_transform = self._cnc_eject
        elif scheme.use_disco_routers:
            self.network.eject_transform = self._disco_eject
        # -- tiles / banks / memory ------------------------------------------
        sweeps = traces.sweep_lengths or [0] * config.n_cores
        self.tiles: List[Tile] = []
        for node in range(config.n_cores):
            trace = traces.traces[node]
            steady = len(trace) - sweeps[node]
            warmup = sweeps[node] + int(steady * warmup_fraction)
            self.tiles.append(
                Tile(
                    node,
                    self,
                    CoreModel(node, trace, config.core_window, warmup=warmup),
                )
            )
        self.banks: List[HomeBank] = [
            HomeBank(node, self) for node in range(config.n_banks)
        ]
        self.memory = MemoryController(
            access_latency=config.memory_latency,
            n_banks=config.total_memory_banks,
            line_source=self.pool.line,
            line_size=config.line_size,
        )
        # -- kernel registration ----------------------------------------------
        self.events = EventQueue()
        self.kernel.register(self.events, phase="cmp.events")
        for tile in self.tiles:
            self.kernel.register(tile, phase="cmp.tiles")
        for bank in self.banks:
            self.kernel.register(bank, phase="cmp.banks", passive=True)
        self.kernel.register(
            _MemoryComponent(self.memory, self.kernel),
            phase="cmp.memory",
            passive=True,
        )
        self._register_stats_groups()
        if prefill:
            self._prefill_llc()
        # -- steady-state registry snapshot (taken when every core crossed
        #    its warmup boundary; energy uses the post-snapshot deltas) -----
        self._snapshot: Optional[CounterSnapshot] = None
        self._measure_start_cycle = 0

    def _prefill_llc(self) -> None:
        """Warm-start the LLC with the workload footprint (checkpoint load).

        Equivalent to simulating a long cold phase — every line the trace
        will touch is installed clean at its home bank in the scheme's
        storage form, with LRU/capacity evictions applied in address order.
        The remaining transient (L1 fill, LLC recency) is excluded via the
        ``warmup_fraction`` window.
        """
        order = getattr(self.traces, "prefill_order", None)
        addresses = order() if order else sorted(self.traces.touched_addresses())
        for addr in addresses:
            bank = self.banks[self.config.home_node(addr)]
            bank._insert(addr, self.pool.line(addr), dirty=False, packet=None)

    # -- counters -----------------------------------------------------------
    def _register_stats_groups(self) -> None:
        """Publish every substrate's counters as named registry groups.

        The network registered its own ``network`` group when it attached
        to the kernel; the CMP layer adds banks, LLC occupancy gauges,
        DRAM, and the L1s.  Counter names keep their historical flat
        spellings — the energy model reads the flattened snapshot.
        """
        registry = self.kernel.stats
        registry.register("banks", self._bank_counters)
        registry.register("llc", self._llc_counters)
        registry.register("memory", self._memory_counters)
        registry.register("l1", self._l1_counters)

    def _bank_counters(self) -> Dict[str, int]:
        reads = writes = tag_lookups = hits = misses = 0
        seg_read = seg_written = comp = decomp = 0
        for bank in self.banks:
            stats = bank.array.stats
            reads += stats.reads
            writes += stats.writes
            tag_lookups += stats.tag_lookups
            hits += stats.hits
            misses += stats.misses
            seg_read += stats.segments_read
            seg_written += stats.segments_written
            comp += bank.side_stats.compressions
            decomp += bank.side_stats.decompressions
        return {
            "bank_reads": reads,
            "bank_writes": writes,
            "bank_tag_lookups": tag_lookups,
            "bank_hits": hits,
            "bank_misses": misses,
            "bank_segments_read": seg_read,
            "bank_segments_written": seg_written,
            "bank_compressions": comp,
            "bank_decompressions": decomp,
        }

    def _llc_counters(self) -> Dict[str, int]:
        resident = used = total = 0
        for bank in self.banks:
            resident += bank.array.resident_lines()
            u, t = bank.array.occupancy()
            used += u
            total += t
        return {
            "llc_resident_lines": resident,
            "llc_segments_used": used,
            "llc_segments_total": total,
        }

    def _memory_counters(self) -> Dict[str, int]:
        return {
            "memory_reads": self.memory.stats.reads,
            "memory_writes": self.memory.stats.writes,
        }

    def _l1_counters(self) -> Dict[str, int]:
        accesses = hits = 0
        for tile in self.tiles:
            stats = tile.l1.stats
            accesses += stats.reads + stats.writes
            hits += stats.hits
        return {"l1_accesses": accesses, "l1_hits": hits}

    def collect_counters(self) -> Dict[str, int]:
        """Scalar event counters consumed by the energy model (the flat
        view of the kernel's stats registry)."""
        return self.kernel.stats.snapshot().flat()

    def _maybe_snapshot(self) -> None:
        if self._snapshot is not None:
            return
        if all(not t.core.in_warmup() for t in self.tiles):
            self._snapshot = self.kernel.stats.snapshot()
            self._measure_start_cycle = self.cycle

    # -- clock ---------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.kernel.cycle

    def schedule(self, delay: int, fn: Callable[..., None], *args) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles (bank latencies, DRAM).

        ``fn`` must be a bound method of the system or a bank so scheduled
        work survives a checkpoint (see :meth:`state_dict`)."""
        due = self.cycle + max(0, delay)
        self.events.schedule(due, fn, *args)
        # The event queue may be asleep; wake it for the new deadline.
        self.kernel.wake(self.events, due)

    # -- messaging --------------------------------------------------------------
    def send_message(self, msg: Message, compressed_payload=None) -> None:
        """Wrap a protocol message into a packet and inject it."""
        packet = self._make_packet(msg, compressed_payload)
        self.network.send(packet)

    def _make_packet(self, msg: Message, compressed_payload) -> Packet:
        carries = msg.kind.carries_data
        compressible = False
        decompress_at_dst = False
        is_compressed = False
        if carries and self.scheme.use_disco_routers:
            compressible = True
            decompress_at_dst = msg.needs_raw_at_dst
            if compressed_payload is not None:
                is_compressed = True
        elif compressed_payload is not None:  # pragma: no cover - guard
            raise ValueError("only DISCO sends pre-compressed packets")
        return Packet(
            msg.kind.packet_type,
            msg.src,
            msg.dst,
            flit_bytes=self.config.noc.flit_bytes,
            line=msg.data if carries else None,
            compressed=compressed_payload,
            is_compressed=is_compressed,
            compressible=compressible,
            decompress_at_dst=decompress_at_dst,
            msg=msg,
        )

    def _on_packet(self, node: int, packet: Packet) -> None:
        msg: Message = packet.msg
        kind = msg.kind
        if kind in (MessageKind.MEM_READ, MessageKind.MEM_WB):
            self._memory_request(msg, packet)
        elif kind in (
            MessageKind.GETS,
            MessageKind.GETX,
            MessageKind.WB_DATA,
            MessageKind.INV_ACK,
            MessageKind.RECALL_DATA,
            MessageKind.RECALL_NACK,
            MessageKind.MEM_DATA,
        ):
            self.banks[node].handle(msg, packet)
        else:
            # Data/INV/RECALL arriving can unblock a sleeping core (e.g.
            # one waiting out a full miss window): wake it for this cycle
            # (``cmp.tiles`` sweeps after every delivery phase).
            self.kernel.wake(self.tiles[node])
            self.tiles[node].handle(msg, packet)

    def _memory_request(self, msg: Message, packet: Packet) -> None:
        if msg.kind is MessageKind.MEM_READ:
            done, data = self.memory.read(msg.addr, self.cycle)
            reply = Message(
                kind=MessageKind.MEM_DATA,
                addr=msg.addr,
                src=msg.dst,
                dst=msg.src,
                requester=msg.requester,
                data=data,
            )
            self.schedule(done - self.cycle, self.send_message, reply)
        else:
            assert msg.data is not None
            if packet.is_compressed:  # pragma: no cover - defensive
                raise RuntimeError("DRAM cannot store a compressed line")
            self.memory.write(msg.addr, msg.data, self.cycle)

    # -- NI transforms (scheme hooks) ------------------------------------------
    def _cnc_inject(self, node: int, packet: Packet) -> int:
        if packet.carries_data and not packet.is_compressed:
            compressed = self.algorithm.compress(packet.line)
            self.network.stats.ni_compressions += 1
            if compressed.compressible:
                packet.apply_compression(compressed)
            return self.scheme.compression_cycles
        return 0

    def _cnc_eject(self, node: int, packet: Packet) -> int:
        if packet.carries_data and packet.is_compressed:
            packet.apply_decompression()
            self.network.stats.ni_decompressions += 1
            return self.scheme.decompression_cycles
        return 0

    def _disco_eject(self, node: int, packet: Packet) -> int:
        if packet.is_compressed and packet.decompress_at_dst:
            # The network never found idle time: the residual decompression
            # latency is exposed at the NI (the mis-prediction cost §3.2
            # accepts), before the block may enter the MSHR (§1).
            packet.apply_decompression()
            self.network.stats.ni_decompressions += 1
            return self.scheme.decompression_cycles
        return 0

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict:
        """Complete mutable state of the system for the snapshot protocol.

        The returned dict must be pickled as ONE object: packets, messages
        and transactions appear in several sub-states (a VC, the replay
        buffer, the event queue) and pickle's memoization is what keeps
        those references aliased after a restore.  Static structure —
        configs, traces, topology, the compression algorithm — is rebuilt
        from the spec, never serialized.
        """
        from repro.noc.flit import pid_watermark

        return {
            "version": 1,
            "kernel": self.kernel.snapshot(),
            "pid_watermark": pid_watermark(),
            "events": self._export_events(),
            "network": self.network.state_dict(),
            "tiles": [tile.state_dict() for tile in self.tiles],
            "banks": [bank.state_dict() for bank in self.banks],
            "memory": self.memory.state_dict(),
            "pool": self.pool.state_dict(),
            "snapshot": self._snapshot,
            "measure_start_cycle": self._measure_start_cycle,
        }

    def load_state(self, state: Dict) -> None:
        """Restore into a freshly-constructed system (``prefill=False``).

        The pid floor is raised past the checkpoint's watermark so packets
        created after the restore can never collide with restored pids in
        the tracer/integrity/reliability ledgers.
        """
        from repro.noc.flit import ensure_pid_floor

        if state.get("version") != 1:
            raise ValueError(
                f"unsupported CmpSystem state version {state.get('version')!r}"
            )
        self.kernel.restore(state["kernel"])
        ensure_pid_floor(state["pid_watermark"])
        self.network.load_state(state["network"])
        for tile, saved in zip(self.tiles, state["tiles"]):
            tile.load_state(saved)
        for bank, saved in zip(self.banks, state["banks"]):
            bank.load_state(saved)
        self.memory.load_state(state["memory"])
        self.pool.load_state(state["pool"])
        self._import_events(state["events"])
        self._snapshot = state["snapshot"]
        self._measure_start_cycle = state["measure_start_cycle"]

    def _export_events(self) -> Dict:
        """Event-queue entries with bound methods replaced by paths.

        Only system- and bank-owned methods are ever scheduled (the
        :meth:`schedule` contract); anything else is a programming error
        surfaced here rather than as an unpicklable checkpoint.
        """
        entries = []
        for due, seq, fn, args in self.events._events:
            owner = getattr(fn, "__self__", None)
            if owner is self:
                path: Tuple = ("system", fn.__name__)
            elif isinstance(owner, HomeBank):
                path = ("bank", owner.node, fn.__name__)
            else:
                raise TypeError(
                    f"cannot checkpoint scheduled callback {fn!r}: only "
                    "bound methods of the system or a home bank survive "
                    "a snapshot"
                )
            entries.append((due, seq, path, args))
        return {"seq": self.events._seq, "entries": entries}

    def _import_events(self, state: Dict) -> None:
        events: List = []
        for due, seq, path, args in state["entries"]:
            if path[0] == "system":
                fn = getattr(self, path[1])
            else:
                fn = getattr(self.banks[path[1]], path[2])
            events.append((due, seq, fn, args))
        heapq.heapify(events)
        self.events._events = events
        self.events._seq = state["seq"]

    # -- the simulation loop ---------------------------------------------------------
    def run(
        self,
        max_cycles: int = _WATCHDOG_LIMIT,
        stall_limit: int = 200_000,
        *,
        pause_at: Optional[int] = None,
        checkpoint_fn: Optional[Callable[["CmpSystem"], None]] = None,
        deadline: Optional[float] = None,
        progress_fn: Optional[Callable[["CmpSystem"], None]] = None,
    ) -> Optional[SimulationResult]:
        """Step the shared kernel until every core drained its trace.

        ``stall_limit`` is the watchdog window: cycles without any core
        progressing before the run is declared wedged (fault-injection
        tests shrink it so a deliberate wedge fails fast).

        The keyword-only hooks serve the checkpoint/supervision layer and
        are all inert by default: ``pause_at`` returns ``None`` once the
        clock reaches it (mid-run state intact, for snapshotting);
        ``checkpoint_fn`` is called after every step (the callee decides
        interval and signal handling); ``deadline`` is a cooperative
        ``time.monotonic()`` budget checked every ~256 steps (raises
        ``TimeoutError``); ``progress_fn`` is a ~256-step heartbeat hook.
        """
        tiles = self.tiles
        cores = [tile.core for tile in tiles]
        kernel = self.kernel
        last_progress_cycle = 0
        last_outstanding = -1
        steps = 0
        # Every core's position is capped at its trace length, so the
        # position sum hits this target exactly when every trace has
        # drained — one pass over the cores covers the done check, the
        # watchdog signature, and the fast-forward in-flight guard.
        trace_target = sum(len(core.trace) for core in cores)
        while True:
            positions = 0
            outstanding = 0
            for core in cores:
                positions += core.position
                outstanding += core.outstanding
            if outstanding == 0:
                if positions == trace_target:
                    break
                self._maybe_fast_forward()
            kernel.step()
            cycle = kernel.cycle
            self._maybe_snapshot()
            if pause_at is not None and cycle >= pause_at:
                return None
            if checkpoint_fn is not None:
                checkpoint_fn(self)
            steps += 1
            if not steps & 0xFF and (
                deadline is not None or progress_fn is not None
            ):
                if progress_fn is not None:
                    progress_fn(self)
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"simulation exceeded its time budget at cycle {cycle}"
                    )
            # Watchdog: abort if globally stuck.
            signature = positions + outstanding
            if signature != last_outstanding:
                last_outstanding = signature
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > stall_limit:
                raise RuntimeError(
                    f"simulation wedged at cycle {cycle} "
                    f"(scheme={self.scheme.name})\n"
                    + self.network.wedge_snapshot()
                    + "\n"
                    + self._wedge_report()
                )
            if cycle > max_cycles:
                raise RuntimeError("simulation exceeded max_cycles")
        return self._collect()

    def _wedge_report(self) -> str:
        """CMP-side companion to the network wedge snapshot."""
        outstanding = sum(t.core.outstanding for t in self.tiles)
        stalled = [
            t.node for t in self.tiles if not t.core.done()
        ]
        pending_trans = sum(len(bank.pending) for bank in self.banks)
        busy = ", ".join(
            f"{phase}:{component!r}"
            for phase, component in self.kernel.busy_components()
            if phase.startswith("cmp.")
        )
        return (
            f"cores unfinished: {stalled} ({outstanding} misses in flight); "
            f"bank transactions pending: {pending_trans}; "
            f"events scheduled: {self.events.has_work()}\n"
            f"busy cmp components: {busy or 'none'}"
        )

    def _maybe_fast_forward(self) -> None:
        """Skip idle cycles: when nothing is in flight anywhere, jump the
        clock to the next core issue time or scheduled event.  Purely a
        wall-clock optimization — observable behaviour is identical because
        no component can act during the skipped cycles."""
        cycle = self.cycle
        horizon = cycle + 2
        next_interesting = None
        for tile in self.tiles:
            core = tile.core
            if core.outstanding > 0:
                return  # a miss is in flight somewhere
            if core.position < len(core.trace):
                when = core.next_issue_cycle
                if when <= horizon:
                    return
                if next_interesting is None or when < next_interesting:
                    next_interesting = when
        next_event = self.events.next_due()
        if next_event is not None:
            if next_event <= horizon:
                return
            if next_interesting is None or next_event < next_interesting:
                next_interesting = next_event
        if next_interesting is None or not self.network.quiescent():
            return
        self.network.cycle = next_interesting - 1

    # -- results ---------------------------------------------------------------------
    def _collect_telemetry(self) -> Optional[Dict]:
        """Plain-data telemetry payload for :class:`SimulationResult`.

        ``None`` when no telemetry knob was on — results (and the disk
        cache envelope) are byte-identical to pre-telemetry runs.
        """
        sampler = self.network.sampler
        tracer = self.network.tracer
        if sampler is None and tracer is None:
            return None
        payload: Dict = {}
        if sampler is not None:
            payload["windows"] = sampler.to_dicts()
            payload["windows_evicted"] = self.network.telemetry.windows_evicted
        if tracer is not None:
            # Packet pids come from a process-global counter, so their
            # absolute values depend on what ran earlier in the process.
            # Remap to dense run-local ids (order of first appearance is
            # deterministic) so the payload — and with it the disk-cache
            # envelope and pool-vs-serial results — is run-reproducible.
            local_ids: Dict[int, int] = {}
            events = []
            for event in tracer.events:
                record = event.to_dict()
                record["pid"] = local_ids.setdefault(
                    event.pid, len(local_ids)
                )
                events.append(record)
            payload["trace"] = {
                "sample_interval": tracer.sample_interval,
                "event_cap": tracer.event_cap,
                "packets_traced": tracer.stats.packets_traced,
                "events_dropped": tracer.dropped,
                "events": events,
            }
        return payload

    def _collect(self) -> SimulationResult:
        total_latency = sum(
            t.core.stats.total_miss_latency for t in self.tiles
        )
        total_primary = sum(
            t.core.stats.primary_misses for t in self.tiles
        )
        l1_hits = sum(t.l1.stats.hits for t in self.tiles)
        l1_accesses = sum(
            t.l1.stats.reads + t.l1.stats.writes for t in self.tiles
        )
        full = self.kernel.stats.snapshot()
        if self._snapshot is not None:
            measured = full.delta(self._snapshot)
        else:
            measured = full
        return SimulationResult(
            telemetry=self._collect_telemetry(),
            profile=(
                profile_from_kernel(self.kernel)
                if self.kernel.component_timing_enabled
                else None
            ),
            scheme=self.scheme.name,
            algorithm=self.scheme.algorithm_name,
            workload=self.traces.profile.name,
            cycles=self.cycle,
            total_primary_misses=total_primary,
            total_miss_latency=total_latency,
            l1_hits=l1_hits,
            l1_accesses=l1_accesses,
            network=self.network.stats,
            n_routers=self.config.noc.n_nodes,
            measured_primary_misses=sum(
                t.core.stats.measured_primary_misses for t in self.tiles
            ),
            measured_miss_latency=sum(
                t.core.stats.measured_miss_latency for t in self.tiles
            ),
            measure_start_cycle=self._measure_start_cycle,
            snapshot_full=full,
            snapshot_measured=measured,
        )
