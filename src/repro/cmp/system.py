"""The full CMP system: wiring, the simulation loop, and results.

``CmpSystem`` builds the NoC (with DISCO routers when the scheme asks for
them), one tile + home bank per node, and the memory controller; registers
the scheme's NI transforms and scheduling policy; and runs the cycle loop
until every core has drained its trace.  The output is a
:class:`SimulationResult` holding the Fig. 5/6/8 latency metric, the raw
event counts the energy model consumes (Fig. 7), and all substrate stats.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cmp.bank import HomeBank
from repro.cmp.config import SystemConfig
from repro.cmp.core_model import CoreModel
from repro.cmp.messages import Message, MessageKind
from repro.cmp.schemes import SchemePolicy
from repro.cmp.tile import Tile
from repro.cache.memory import MemoryController
from repro.core.disco_router import make_disco_router_factory
from repro.core.scheduling import baseline_priority, disco_priority
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.stats import NetworkStats
from repro.workloads.trace import TraceSet

#: Abort threshold: cycles without any core finishing progress.
_WATCHDOG_LIMIT = 4_000_000


@dataclass
class SimulationResult:
    """Everything one (scheme, workload) run produced."""

    scheme: str
    algorithm: str
    workload: str
    cycles: int
    total_primary_misses: int
    total_miss_latency: int
    l1_hits: int
    l1_accesses: int
    network: NetworkStats = None  # type: ignore[assignment]
    bank_reads: int = 0
    bank_writes: int = 0
    bank_tag_lookups: int = 0
    bank_segments_read: int = 0
    bank_segments_written: int = 0
    bank_hits: int = 0
    bank_misses: int = 0
    bank_compressions: int = 0
    bank_decompressions: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    llc_resident_lines: int = 0
    llc_segment_occupancy: float = 0.0

    measured_primary_misses: int = 0
    measured_miss_latency: int = 0
    measure_start_cycle: int = 0
    n_routers: int = 0
    counters_full: Dict[str, int] = field(default_factory=dict)
    counters_measured: Dict[str, int] = field(default_factory=dict)

    @property
    def avg_miss_latency(self) -> float:
        """The paper's metric: average on-chip data access latency.

        Uses the post-warmup (steady-state) samples when a warmup region
        was configured, all misses otherwise.
        """
        if self.measured_primary_misses > 0:
            return self.measured_miss_latency / self.measured_primary_misses
        if self.total_primary_misses == 0:
            return 0.0
        return self.total_miss_latency / self.total_primary_misses

    @property
    def measured_cycles(self) -> int:
        return self.cycles - self.measure_start_cycle

    @property
    def l1_miss_rate(self) -> float:
        if self.l1_accesses == 0:
            return 0.0
        return 1.0 - self.l1_hits / self.l1_accesses

    @property
    def llc_miss_rate(self) -> float:
        lookups = self.bank_hits + self.bank_misses
        if lookups == 0:
            return 0.0
        return self.bank_misses / lookups


class CmpSystem:
    """One simulatable CMP instance (config x scheme x workload)."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: SchemePolicy,
        traces: TraceSet,
        warmup_fraction: float = 0.0,
        prefill: bool = True,
    ):
        if traces.n_cores != config.n_cores:
            raise ValueError(
                f"trace set has {traces.n_cores} cores, "
                f"config has {config.n_cores}"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.config = config
        self.scheme = scheme
        self.traces = traces
        self.warmup_fraction = warmup_fraction
        self.prefill = prefill
        self.pool = traces.pool
        self.algorithm = scheme.make_algorithm(config.line_size)
        # -- network --------------------------------------------------------
        router_factory = None
        if scheme.use_disco_routers:
            assert scheme.disco is not None
            router_factory = make_disco_router_factory(
                scheme.disco, self.algorithm
            )
        self.network = Network(config.noc, router_factory=router_factory)
        self.network.set_delivery_handler(self._on_packet)
        self.network.packet_priority = (
            disco_priority if scheme.use_disco_routers else baseline_priority
        )
        if scheme.ni_compression:
            self.network.inject_transform = self._cnc_inject
            self.network.eject_transform = self._cnc_eject
        elif scheme.use_disco_routers:
            self.network.eject_transform = self._disco_eject
        # -- tiles / banks / memory ------------------------------------------
        sweeps = traces.sweep_lengths or [0] * config.n_cores
        self.tiles: List[Tile] = []
        for node in range(config.n_cores):
            trace = traces.traces[node]
            steady = len(trace) - sweeps[node]
            warmup = sweeps[node] + int(steady * warmup_fraction)
            self.tiles.append(
                Tile(
                    node,
                    self,
                    CoreModel(node, trace, config.core_window, warmup=warmup),
                )
            )
        self.banks: List[HomeBank] = [
            HomeBank(node, self) for node in range(config.n_banks)
        ]
        self.memory = MemoryController(
            access_latency=config.memory_latency,
            n_banks=config.total_memory_banks,
            line_source=self.pool.line,
            line_size=config.line_size,
        )
        # -- event queue -------------------------------------------------------
        self._events: List = []
        self._event_seq = itertools.count()
        if prefill:
            self._prefill_llc()
        # -- steady-state counter snapshot (taken when every core crossed
        #    its warmup boundary; energy uses the post-snapshot deltas) -----
        self._snapshot: Optional[Dict[str, int]] = None
        self._measure_start_cycle = 0

    def _prefill_llc(self) -> None:
        """Warm-start the LLC with the workload footprint (checkpoint load).

        Equivalent to simulating a long cold phase — every line the trace
        will touch is installed clean at its home bank in the scheme's
        storage form, with LRU/capacity evictions applied in address order.
        The remaining transient (L1 fill, LLC recency) is excluded via the
        ``warmup_fraction`` window.
        """
        order = getattr(self.traces, "prefill_order", None)
        addresses = order() if order else sorted(self.traces.touched_addresses())
        for addr in addresses:
            bank = self.banks[self.config.home_node(addr)]
            bank._insert(addr, self.pool.line(addr), dirty=False, packet=None)

    # -- counters -----------------------------------------------------------
    def collect_counters(self) -> Dict[str, int]:
        """Scalar event counters consumed by the energy model."""
        net = self.network.stats
        counters = {
            "cycles": self.cycle,
            "link_flits": net.link_flits,
            "buffer_writes": net.buffer_writes,
            "buffer_reads": net.buffer_reads,
            "crossbar_flits": net.crossbar_flits,
            "sa_grants": net.sa_grants,
            "va_grants": net.va_grants,
            "router_compressions": net.compressions,
            "router_decompressions": net.decompressions,
            "ni_compressions": net.ni_compressions,
            "ni_decompressions": net.ni_decompressions,
            "flits_injected": net.flits_injected,
            "flits_ejected": net.flits_ejected,
            "packets_injected": net.packets_injected,
            "memory_reads": self.memory.stats.reads,
            "memory_writes": self.memory.stats.writes,
        }
        bank_reads = bank_writes = tag_lookups = 0
        seg_read = seg_written = bank_comp = bank_decomp = 0
        for bank in self.banks:
            stats = bank.array.stats
            bank_reads += stats.reads
            bank_writes += stats.writes
            tag_lookups += stats.tag_lookups
            seg_read += stats.segments_read
            seg_written += stats.segments_written
            bank_comp += bank.side_stats.compressions
            bank_decomp += bank.side_stats.decompressions
        counters.update(
            bank_reads=bank_reads,
            bank_writes=bank_writes,
            bank_tag_lookups=tag_lookups,
            bank_segments_read=seg_read,
            bank_segments_written=seg_written,
            bank_compressions=bank_comp,
            bank_decompressions=bank_decomp,
        )
        l1_accesses = sum(
            t.l1.stats.reads + t.l1.stats.writes for t in self.tiles
        )
        counters["l1_accesses"] = l1_accesses
        return counters

    def _maybe_snapshot(self) -> None:
        if self._snapshot is not None:
            return
        if all(not t.core.in_warmup() for t in self.tiles):
            self._snapshot = self.collect_counters()
            self._measure_start_cycle = self.cycle

    # -- clock ---------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.network.cycle

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` cycles (bank latencies, DRAM)."""
        heapq.heappush(
            self._events, (self.cycle + max(0, delay), next(self._event_seq), fn)
        )

    # -- messaging --------------------------------------------------------------
    def send_message(self, msg: Message, compressed_payload=None) -> None:
        """Wrap a protocol message into a packet and inject it."""
        packet = self._make_packet(msg, compressed_payload)
        self.network.send(packet)

    def _make_packet(self, msg: Message, compressed_payload) -> Packet:
        carries = msg.kind.carries_data
        compressible = False
        decompress_at_dst = False
        is_compressed = False
        if carries and self.scheme.use_disco_routers:
            compressible = True
            decompress_at_dst = msg.needs_raw_at_dst
            if compressed_payload is not None:
                is_compressed = True
        elif compressed_payload is not None:  # pragma: no cover - guard
            raise ValueError("only DISCO sends pre-compressed packets")
        return Packet(
            msg.kind.packet_type,
            msg.src,
            msg.dst,
            flit_bytes=self.config.noc.flit_bytes,
            line=msg.data if carries else None,
            compressed=compressed_payload,
            is_compressed=is_compressed,
            compressible=compressible,
            decompress_at_dst=decompress_at_dst,
            msg=msg,
        )

    def _on_packet(self, node: int, packet: Packet) -> None:
        msg: Message = packet.msg
        kind = msg.kind
        if kind in (MessageKind.MEM_READ, MessageKind.MEM_WB):
            self._memory_request(msg, packet)
        elif kind in (
            MessageKind.GETS,
            MessageKind.GETX,
            MessageKind.WB_DATA,
            MessageKind.INV_ACK,
            MessageKind.RECALL_DATA,
            MessageKind.RECALL_NACK,
            MessageKind.MEM_DATA,
        ):
            self.banks[node].handle(msg, packet)
        else:
            self.tiles[node].handle(msg, packet)

    def _memory_request(self, msg: Message, packet: Packet) -> None:
        if msg.kind is MessageKind.MEM_READ:
            done, data = self.memory.read(msg.addr, self.cycle)
            reply = Message(
                kind=MessageKind.MEM_DATA,
                addr=msg.addr,
                src=msg.dst,
                dst=msg.src,
                requester=msg.requester,
                data=data,
            )
            self.schedule(done - self.cycle, lambda: self.send_message(reply))
        else:
            assert msg.data is not None
            if packet.is_compressed:  # pragma: no cover - defensive
                raise RuntimeError("DRAM cannot store a compressed line")
            self.memory.write(msg.addr, msg.data, self.cycle)

    # -- NI transforms (scheme hooks) ------------------------------------------
    def _cnc_inject(self, node: int, packet: Packet) -> int:
        if packet.carries_data and not packet.is_compressed:
            compressed = self.algorithm.compress(packet.line)
            self.network.stats.ni_compressions += 1
            if compressed.compressible:
                packet.apply_compression(compressed)
            return self.scheme.compression_cycles
        return 0

    def _cnc_eject(self, node: int, packet: Packet) -> int:
        if packet.carries_data and packet.is_compressed:
            packet.apply_decompression()
            self.network.stats.ni_decompressions += 1
            return self.scheme.decompression_cycles
        return 0

    def _disco_eject(self, node: int, packet: Packet) -> int:
        if packet.is_compressed and packet.decompress_at_dst:
            # The network never found idle time: the residual decompression
            # latency is exposed at the NI (the mis-prediction cost §3.2
            # accepts), before the block may enter the MSHR (§1).
            packet.apply_decompression()
            self.network.stats.ni_decompressions += 1
            return self.scheme.decompression_cycles
        return 0

    # -- the simulation loop ---------------------------------------------------------
    def run(self, max_cycles: int = _WATCHDOG_LIMIT) -> SimulationResult:
        tiles = self.tiles
        last_progress_cycle = 0
        last_outstanding = -1
        while True:
            if all(tile.core.done() for tile in tiles):
                break
            self._maybe_fast_forward()
            self.network.tick()
            self._run_events()
            cycle = self.cycle
            for tile in tiles:
                tile.tick(cycle)
            self._maybe_snapshot()
            # Watchdog: abort if globally stuck.
            signature = sum(t.core.position for t in tiles) + sum(
                t.core.outstanding for t in tiles
            )
            if signature != last_outstanding:
                last_outstanding = signature
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > 200_000:
                raise RuntimeError(
                    f"simulation wedged at cycle {cycle} "
                    f"(scheme={self.scheme.name})"
                )
            if cycle > max_cycles:
                raise RuntimeError("simulation exceeded max_cycles")
        return self._collect()

    def _maybe_fast_forward(self) -> None:
        """Skip idle cycles: when nothing is in flight anywhere, jump the
        clock to the next core issue time or scheduled event.  Purely a
        wall-clock optimization — observable behaviour is identical because
        no component can act during the skipped cycles."""
        cycle = self.cycle
        horizon = cycle + 2
        next_interesting = None
        for tile in self.tiles:
            core = tile.core
            if core.outstanding > 0:
                return  # a miss is in flight somewhere
            if core.position < len(core.trace):
                when = core.next_issue_cycle
                if when <= horizon:
                    return
                if next_interesting is None or when < next_interesting:
                    next_interesting = when
        if self._events:
            when = self._events[0][0]
            if when <= horizon:
                return
            if next_interesting is None or when < next_interesting:
                next_interesting = when
        if next_interesting is None or not self.network.quiescent():
            return
        self.network.cycle = next_interesting - 1

    def _run_events(self) -> None:
        events = self._events
        cycle = self.cycle
        while events and events[0][0] <= cycle:
            _, _, fn = heapq.heappop(events)
            fn()

    # -- results ---------------------------------------------------------------------
    def _collect(self) -> SimulationResult:
        total_latency = sum(
            t.core.stats.total_miss_latency for t in self.tiles
        )
        total_primary = sum(
            t.core.stats.primary_misses for t in self.tiles
        )
        l1_hits = sum(t.l1.stats.hits for t in self.tiles)
        l1_accesses = sum(
            t.l1.stats.reads + t.l1.stats.writes for t in self.tiles
        )
        result = SimulationResult(
            scheme=self.scheme.name,
            algorithm=self.scheme.algorithm_name,
            workload=self.traces.profile.name,
            cycles=self.cycle,
            total_primary_misses=total_primary,
            total_miss_latency=total_latency,
            l1_hits=l1_hits,
            l1_accesses=l1_accesses,
            network=self.network.stats,
            n_routers=self.config.noc.n_nodes,
        )
        used = total = 0
        for bank in self.banks:
            stats = bank.array.stats
            result.bank_reads += stats.reads
            result.bank_writes += stats.writes
            result.bank_tag_lookups += stats.tag_lookups
            result.bank_segments_read += stats.segments_read
            result.bank_segments_written += stats.segments_written
            result.bank_hits += stats.hits
            result.bank_misses += stats.misses
            result.bank_compressions += bank.side_stats.compressions
            result.bank_decompressions += bank.side_stats.decompressions
            result.llc_resident_lines += bank.array.resident_lines()
            u, t = bank.array.occupancy()
            used += u
            total += t
        result.llc_segment_occupancy = used / total if total else 0.0
        result.memory_reads = self.memory.stats.reads
        result.memory_writes = self.memory.stats.writes
        result.measured_primary_misses = sum(
            t.core.stats.measured_primary_misses for t in self.tiles
        )
        result.measured_miss_latency = sum(
            t.core.stats.measured_miss_latency for t in self.tiles
        )
        final = self.collect_counters()
        result.counters_full = final
        base = self._snapshot or {key: 0 for key in final}
        result.counters_measured = {
            key: final[key] - base.get(key, 0) for key in final
        }
        result.measure_start_cycle = self._measure_start_cycle
        return result
