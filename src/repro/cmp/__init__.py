"""The tiled CMP: cores + L1s + NUCA banks + directory + MC over the NoC.

This package assembles the full system of the paper's Table 2 and
implements the five evaluated schemes (baseline / ideal / CC / CNC /
DISCO).  The main entry point is :class:`repro.cmp.system.CmpSystem`:

>>> from repro.cmp import CmpSystem, SystemConfig, make_scheme
>>> from repro.workloads import get_profile, generate_traces
>>> config = SystemConfig.scaled_4x4()
>>> traces = generate_traces(get_profile("blackscholes"), config.n_cores, 200)
>>> system = CmpSystem(config, make_scheme("disco"), traces)
>>> result = system.run()
>>> result.avg_miss_latency > 0
True
"""

from repro.cmp.config import SystemConfig
from repro.cmp.messages import Message, MessageKind
from repro.cmp.schemes import SchemePolicy, make_scheme, SCHEME_NAMES
from repro.cmp.core_model import CoreModel, CoreStats
from repro.cmp.system import CmpSystem, SimulationResult

__all__ = [
    "SystemConfig",
    "Message",
    "MessageKind",
    "SchemePolicy",
    "make_scheme",
    "SCHEME_NAMES",
    "CoreModel",
    "CoreStats",
    "CmpSystem",
    "SimulationResult",
]
