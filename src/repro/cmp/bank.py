"""Home NUCA bank: data array + blocking coherence directory.

Each tile hosts one L2 bank which is the *home* of the lines that map to it
(static line-interleaved NUCA).  The directory serializes transactions per
line: while one is pending, later requests queue and are replayed in order,
which keeps the protocol race-free with only two transient phases
(waiting for a recalled/written-back M line, waiting for invalidation
acks) plus the memory-fetch wait.

The directory map itself is modelled as perfect (unbounded), decoupled from
data-array residency — see DESIGN.md; data capacity (the thing compression
buys) is fully modelled by the segmented :class:`CompressedBankArray`.

Scheme hooks (paper §4.1): when the bank stores compressed lines, reads
that must leave in *raw* form (CC, CNC, ideal) pay the algorithm's
decompression latency inside the bank access path — except ideal, which
pays zero by definition; fills compress off the critical path; DISCO sends
the stored compressed image directly with no bank-side latency at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.cache.compressed_bank import BankLine, CompressedBankArray
from repro.cmp.messages import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cmp.system import CmpSystem
    from repro.noc.flit import Packet

# Directory states.
DIR_U = "U"
DIR_S = "S"
DIR_M = "M"

# Transaction phases.
PH_RECALL = "wait_recall"
PH_WB = "wait_wb"
PH_ACKS = "wait_acks"
PH_MEM = "wait_mem"
PH_SERVE = "serve"


@dataclass
class DirEntry:
    state: str = DIR_U
    owner: int = -1
    sharers: Set[int] = field(default_factory=set)


@dataclass
class Transaction:
    addr: int
    requester: int
    is_getx: bool
    issue_cycle: int
    phase: str = PH_SERVE
    acks_left: int = 0
    wb_received: bool = False
    queue: List[Message] = field(default_factory=list)


@dataclass
class BankSideStats:
    """Scheme-level compressor activity at this bank."""

    compressions: int = 0
    decompressions: int = 0
    requests: int = 0
    memory_fetches: int = 0


class HomeBank:
    """One NUCA bank / directory controller."""

    def __init__(self, node: int, system: "CmpSystem"):
        self.node = node
        self.system = system
        config = system.config
        self.array = CompressedBankArray(
            n_sets=config.l2_sets_per_bank,
            ways=config.l2_ways,
            line_size=config.line_size,
            tag_factor=(
                config.l2_tag_factor if system.scheme.store_compressed else 1
            ),
            segment_bytes=config.segment_bytes,
            index_stride=config.n_banks,
        )
        self.directory: Dict[int, DirEntry] = {}
        self.pending: Dict[int, Transaction] = {}
        self.side_stats = BankSideStats()

    # -- kernel component protocol (passive: reactive, never scheduled) --------
    def has_work(self) -> bool:
        """Open directory transactions — feeds kernel wedge diagnostics."""
        return bool(self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HomeBank(node={self.node}, {len(self.pending)} pending)"

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Directory, open transactions, side stats, and the data array.

        Transactions are captured live: a restored event-queue entry
        scheduled with ``self._respond, trans, ...`` must resolve to the
        *same* Transaction object as ``self.pending[addr]``, which the
        system's single-pickle envelope guarantees.
        """
        return {
            "version": 1,
            "array": self.array.state_dict(),
            "directory": dict(self.directory),
            "pending": dict(self.pending),
            "side_stats": dict(self.side_stats.__dict__),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported HomeBank state version {state.get('version')!r}"
            )
        self.array.load_state(state["array"])
        self.directory = dict(state["directory"])
        self.pending = dict(state["pending"])
        self.side_stats.__dict__.update(state["side_stats"])

    # -- message dispatch -----------------------------------------------------
    def handle(self, msg: Message, packet: Optional["Packet"] = None) -> None:
        kind = msg.kind
        if kind in (MessageKind.GETS, MessageKind.GETX):
            self.side_stats.requests += 1
            self._request(msg)
        elif kind is MessageKind.WB_DATA:
            self._writeback(msg, packet)
        elif kind is MessageKind.INV_ACK:
            self._inv_ack(msg)
        elif kind in (MessageKind.RECALL_DATA, MessageKind.RECALL_NACK):
            self._recall_reply(msg, packet)
        elif kind is MessageKind.MEM_DATA:
            self._mem_data(msg, packet)
        else:  # pragma: no cover - routing guard
            raise ValueError(f"bank {self.node} got unexpected {kind}")

    # -- request path -------------------------------------------------------------
    def _request(self, msg: Message) -> None:
        trans = self.pending.get(msg.addr)
        if trans is not None:
            trans.queue.append(msg)
            return
        self._begin(msg)

    def _begin(self, msg: Message) -> None:
        addr = msg.addr
        entry = self.directory.setdefault(addr, DirEntry())
        trans = Transaction(
            addr=addr,
            requester=msg.requester,
            is_getx=(msg.kind is MessageKind.GETX),
            issue_cycle=self.system.cycle,
        )
        self.pending[addr] = trans
        if entry.state == DIR_M:
            if entry.owner == msg.requester:
                # The owner missed again: its dirty writeback is in flight.
                trans.phase = PH_WB
            else:
                trans.phase = PH_RECALL
                self.system.send_message(
                    Message(
                        kind=MessageKind.RECALL,
                        addr=addr,
                        src=self.node,
                        dst=entry.owner,
                        requester=msg.requester,
                    )
                )
            return
        if trans.is_getx:
            targets = entry.sharers - {msg.requester}
            if targets:
                trans.phase = PH_ACKS
                trans.acks_left = len(targets)
                for sharer in targets:
                    self.system.send_message(
                        Message(
                            kind=MessageKind.INV,
                            addr=addr,
                            src=self.node,
                            dst=sharer,
                            requester=msg.requester,
                        )
                    )
                return
        self._serve_data(trans)

    def _serve_data(self, trans: Transaction) -> None:
        """Directory is consistent; produce the data for the requester."""
        trans.phase = PH_SERVE
        scheme = self.system.scheme
        line = self.array.lookup(trans.addr)
        if line is not None:
            latency = self.system.config.l2_hit_latency
            if scheme.store_compressed and not scheme.send_compressed_from_bank:
                # Someone has to decompress before the response leaves the
                # bank (CC/CNC pay for it; ideal gets it for free).
                self.side_stats.decompressions += 1
                latency += scheme.bank_read_decompress_cycles
            data = line.data
            payload = (
                line.compressed_payload
                if scheme.send_compressed_from_bank
                else None
            )
            self.system.schedule(latency, self._respond, trans, data, payload)
            return
        # Bank data miss: fetch the line from memory.
        trans.phase = PH_MEM
        self.side_stats.memory_fetches += 1
        fetch = Message(
            kind=MessageKind.MEM_READ,
            addr=trans.addr,
            src=self.node,
            dst=self.system.config.mc_for(trans.addr),
            requester=trans.requester,
        )
        self.system.schedule(
            self.system.config.l2_hit_latency,
            self.system.send_message,
            fetch,
        )

    def _respond(self, trans: Transaction, data: bytes, payload) -> None:
        entry = self.directory[trans.addr]
        if trans.is_getx:
            entry.state = DIR_M
            entry.owner = trans.requester
            entry.sharers = set()
            grant = "M"
        else:
            entry.state = DIR_S
            entry.owner = -1
            entry.sharers.add(trans.requester)
            grant = "S"
        self.system.send_message(
            Message(
                kind=MessageKind.DATA,
                addr=trans.addr,
                src=self.node,
                dst=trans.requester,
                requester=trans.requester,
                data=data,
                grant_state=grant,
            ),
            compressed_payload=payload,
        )
        self._complete(trans)

    def _complete(self, trans: Transaction) -> None:
        self.pending.pop(trans.addr, None)
        queued = trans.queue
        for msg in queued:
            self._request(msg)

    # -- inbound data paths ----------------------------------------------------
    def _insert(self, addr: int, data: bytes, dirty: bool,
                packet: Optional["Packet"]) -> None:
        """Insert a line, applying the scheme's storage form."""
        scheme = self.system.scheme
        stored_bytes: Optional[int] = None
        payload = None
        if scheme.store_compressed:
            if packet is not None and packet.is_compressed:
                # Arrived compressed in-network (DISCO): store as-is.
                payload = packet.compressed
                stored_bytes = payload.size_bytes
            elif (
                scheme.send_compressed_from_bank
                and packet is not None
                and scheme.disco is not None
                and not scheme.disco.compress_at_fill
            ):
                # Strict in-network-only DISCO: a block that reached the
                # bank uncompressed stays uncompressed — the capacity
                # benefit then depends entirely on the network having had
                # idle time to compress (an ablation mode; the default
                # uses the local engine off the critical path).
                pass
            else:
                compressed = self.system.algorithm.compress(data)
                self.side_stats.compressions += 1
                if compressed.compressible:
                    payload = compressed
                    stored_bytes = compressed.size_bytes
        victims = self.array.insert(
            addr,
            data,
            stored_bytes=stored_bytes,
            dirty=dirty,
            compressed_payload=payload,
        )
        for victim in victims:
            if victim.dirty:
                self._evict_to_memory(victim)

    def _evict_to_memory(self, victim: BankLine) -> None:
        scheme = self.system.scheme
        payload = None
        if scheme.store_compressed and not scheme.send_compressed_from_bank:
            # CC/CNC/ideal decompress the victim at the bank (off the
            # requesting core's critical path; the energy is still real).
            if victim.compressed_payload is not None:
                self.side_stats.decompressions += 1
        elif scheme.send_compressed_from_bank:
            payload = victim.compressed_payload
        self.system.send_message(
            Message(
                kind=MessageKind.MEM_WB,
                addr=victim.addr,
                src=self.node,
                dst=self.system.config.mc_for(victim.addr),
                data=victim.data,
            ),
            compressed_payload=payload,
        )

    def _writeback(self, msg: Message, packet: Optional["Packet"]) -> None:
        addr = msg.addr
        entry = self.directory.setdefault(addr, DirEntry())
        if entry.state == DIR_M and entry.owner == msg.src:
            entry.state = DIR_U
            entry.owner = -1
            entry.sharers = set()
        assert msg.data is not None
        self._insert(addr, msg.data, dirty=True, packet=packet)
        # Precise writeback tracking: the writer clears its WB-in-flight
        # marker on this ack, so a later recall is answered correctly
        # (defer for an in-flight re-grant vs. NACK for an in-flight WB).
        self.system.send_message(
            Message(
                kind=MessageKind.WB_ACK,
                addr=addr,
                src=self.node,
                dst=msg.src,
            )
        )
        trans = self.pending.get(addr)
        if trans is None:
            return
        if trans.phase == PH_WB:
            self._serve_data(trans)
        elif trans.phase == PH_RECALL:
            # WB raced with the recall; remember it so the NACK can proceed.
            trans.wb_received = True

    def _recall_reply(self, msg: Message, packet: Optional["Packet"]) -> None:
        trans = self.pending.get(msg.addr)
        if trans is None or trans.phase != PH_RECALL:  # pragma: no cover
            raise RuntimeError(
                f"bank {self.node}: unexpected recall reply for {msg.addr:#x}"
            )
        entry = self.directory[msg.addr]
        entry.state = DIR_U
        entry.owner = -1
        entry.sharers = set()
        if msg.kind is MessageKind.RECALL_DATA:
            assert msg.data is not None
            self._insert(msg.addr, msg.data, dirty=True, packet=packet)
            self._serve_data(trans)
        elif trans.wb_received:
            self._serve_data(trans)
        else:
            trans.phase = PH_WB

    def _inv_ack(self, msg: Message) -> None:
        trans = self.pending.get(msg.addr)
        if trans is None or trans.phase != PH_ACKS:  # pragma: no cover
            raise RuntimeError(
                f"bank {self.node}: unexpected INV_ACK for {msg.addr:#x}"
            )
        entry = self.directory[msg.addr]
        entry.sharers.discard(msg.src)
        trans.acks_left -= 1
        if trans.acks_left == 0:
            self._serve_data(trans)

    def _mem_data(self, msg: Message, packet: Optional["Packet"]) -> None:
        trans = self.pending.get(msg.addr)
        if trans is None or trans.phase != PH_MEM:  # pragma: no cover
            raise RuntimeError(
                f"bank {self.node}: unexpected MEM_DATA for {msg.addr:#x}"
            )
        assert msg.data is not None
        # Fill the array (compression happens off the critical path) and
        # forward the data to the requester immediately.
        self._insert(msg.addr, msg.data, dirty=False, packet=packet)
        stored = self.array.lookup(msg.addr, touch=False)
        payload = None
        if (
            self.system.scheme.send_compressed_from_bank
            and stored is not None
        ):
            payload = stored.compressed_payload
        self._respond_from_fill(trans, msg.data, payload)

    def _respond_from_fill(self, trans: Transaction, data: bytes,
                           payload) -> None:
        self._respond(trans, data, payload)
