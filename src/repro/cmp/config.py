"""Full-system configuration (paper Table 2) and scaled variants.

``SystemConfig.table2()`` reproduces the paper's parameters verbatim
(16 cores, 4 MB NUCA, 4 GB DRAM...).  Cycle-level simulation in pure Python
cannot run billions of instructions, so the experiment runners use
``scaled_*`` variants: the LLC is shrunk together with the synthetic
working sets so that *capacity pressure* — the ratio that determines the
benefit of compression — matches the paper's regime within traces of a few
thousand accesses per core.  Every scheme within one experiment uses the
identical configuration, so the normalized comparisons are unaffected by
the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.noc.config import NocConfig


@dataclass(frozen=True)
class SystemConfig:
    """Structural parameters of the tiled CMP."""

    noc: NocConfig = field(default_factory=NocConfig)
    line_size: int = 64

    # L1 (Table 2: 32KB 4-way data cache, 64B lines)
    l1_sets: int = 128
    l1_ways: int = 4
    l1_mshrs: int = 8
    l1_hit_latency: int = 1

    # Shared NUCA L2 (Table 2: 4MB, 16 banks, 8-way, 4-cycle hit)
    l2_sets_per_bank: int = 512
    l2_ways: int = 8
    l2_hit_latency: int = 4
    l2_tag_factor: int = 2
    segment_bytes: int = 8

    # Memory (Table 2: 4G DRAM, 1 rank, 1 channel, 8 banks)
    memory_latency: int = 120
    memory_banks: int = 8  # per memory controller
    mc_nodes: Tuple[int, ...] = (0,)

    # Core model
    core_window: int = 4  # outstanding L1 misses per core (4-issue OoO)

    def __post_init__(self) -> None:
        if self.l1_sets < 1 or self.l1_ways < 1:
            raise ValueError("L1 geometry must be positive")
        if self.l2_sets_per_bank < 1 or self.l2_ways < 1:
            raise ValueError("L2 geometry must be positive")
        if not self.mc_nodes:
            raise ValueError("need at least one memory controller")
        for node in self.mc_nodes:
            if not 0 <= node < self.noc.n_nodes:
                raise ValueError(f"mc node {node} outside the fabric")
        if self.core_window < 1:
            raise ValueError("core_window must be at least 1")

    @property
    def n_cores(self) -> int:
        return self.noc.n_nodes

    @property
    def n_banks(self) -> int:
        return self.noc.n_nodes  # one NUCA bank per tile

    @property
    def llc_capacity_bytes(self) -> int:
        return (
            self.n_banks * self.l2_sets_per_bank * self.l2_ways * self.line_size
        )

    def home_node(self, addr: int) -> int:
        """Static NUCA mapping: line-interleaved across banks."""
        return addr % self.n_banks

    def mc_for(self, addr: int) -> int:
        """Memory-controller node serving this line (channel interleave)."""
        return self.mc_nodes[addr % len(self.mc_nodes)]

    @property
    def total_memory_banks(self) -> int:
        return self.memory_banks * len(self.mc_nodes)

    # -- canonical configurations ------------------------------------------
    @staticmethod
    def table2() -> "SystemConfig":
        """The paper's full-scale configuration (4x4, 4MB NUCA)."""
        return SystemConfig()

    @staticmethod
    def scaled_4x4(l2_sets_per_bank: int = 32,
                   l1_sets: int = 32) -> "SystemConfig":
        """Scaled 16-tile system for tractable cycle-level runs.

        The whole hierarchy shrinks together: L1 = 8 KB (32 sets x 4 ways),
        LLC = 16 banks x 32 sets x 8 ways x 64 B = 256 KB, preserving the
        paper's L1 << LLC capacity ratio; the synthetic working sets
        (DESIGN.md) are sized around the LLC so compression's extra
        effective capacity matters, matching the paper's pressure regime
        at reduced scale.
        """
        return SystemConfig(
            l2_sets_per_bank=l2_sets_per_bank, l1_sets=l1_sets
        )

    @staticmethod
    def scaled_fabric(noc: NocConfig,
                      l2_sets_per_bank: int = 32,
                      l1_sets: int = 32) -> "SystemConfig":
        """Scaled system over an arbitrary fabric.

        Memory-controller placement comes from the topology's
        ``corner_nodes()`` query (fabric edges on meshes, evenly spread on
        edge-less topologies).  Memory channels scale with the tile count
        (one corner MC per 16 tiles, as in large tiled CMPs) so the
        off-chip interface does not become the bottleneck that hides the
        on-chip effects under study.
        """
        if noc.n_nodes > 16:
            mc_nodes = noc.make_topology().corner_nodes()
        else:
            mc_nodes = (0,)
        return SystemConfig(
            noc=noc,
            l2_sets_per_bank=l2_sets_per_bank,
            l1_sets=l1_sets,
            mc_nodes=mc_nodes,
        )

    @staticmethod
    def scaled_mesh(width: int, height: int,
                    l2_sets_per_bank: int = 32,
                    l1_sets: int = 32) -> "SystemConfig":
        """Scaled system with an arbitrary mesh (Fig. 8 scalability)."""
        return SystemConfig.scaled_fabric(
            NocConfig(width=width, height=height),
            l2_sets_per_bank=l2_sets_per_bank,
            l1_sets=l1_sets,
        )
