"""Core-side tile controller: drives the core, owns the L1, talks MSI.

The tile issues the core's trace accesses into the L1, turns misses into
GETS/GETX rounds to the home bank, commits store values (drawn from the
workload's :class:`~repro.workloads.corpus.ValuePool`, so real data flows
through the system), answers invalidations and recalls, and emits dirty
writebacks on eviction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cache.l1 import HIT, STATE_M, L1Cache
from repro.cmp.core_model import CoreModel
from repro.cmp.messages import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cmp.system import CmpSystem
    from repro.noc.flit import Packet


class Tile:
    """One tile: core + private L1 (the bank lives in ``cmp.bank``)."""

    def __init__(self, node: int, system: "CmpSystem", core: CoreModel):
        self.node = node
        self.system = system
        self.core = core
        config = system.config
        self.l1 = L1Cache(
            n_sets=config.l1_sets,
            ways=config.l1_ways,
            line_size=config.line_size,
            mshrs=config.l1_mshrs,
        )
        # Dirty lines written back but not yet consumed by their home (the
        # home serializes per line, so the next DATA we receive for the
        # address proves the WB was consumed) — used to disambiguate
        # recalls that race with our own writeback.
        self._wb_in_flight: set = set()

    # -- per-cycle issue ---------------------------------------------------------
    def has_work(self) -> bool:
        """Kernel idle test: tick until the core has recorded its finish
        (the finish marker is set inside ``tick``, so the tile stays
        schedulable for the cycle that records it)."""
        return self.core.stats.finished_cycle < 0

    def tick(self, cycle: int) -> None:
        while self.core.can_issue(cycle):
            if not self._issue_one(cycle):
                break
        if self.core.trace_exhausted() and self.core.outstanding == 0:
            self.core.finished(cycle)

    def next_wake(self, cycle: int) -> Optional[int]:
        """Idleness contract: sleep between memory events.

        While the core can still attempt issue (trace left, miss window
        open) the tile stays scheduled — at the core's next issue cycle,
        or every cycle while an MSHR-full stall is polling (so
        ``stall_cycles`` counts match the tick-everything loop exactly).
        Otherwise it is waiting on fills (or finished): deliveries wake
        it via :meth:`CmpSystem._on_packet`.
        """
        core = self.core
        if core.stats.finished_cycle >= 0:
            return None
        if core.position < len(core.trace) and core.outstanding < core.window:
            nxt = core.next_issue_cycle
            return nxt if nxt > cycle else cycle + 1
        return None

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "version": 1,
            "l1": self.l1.state_dict(),
            "wb_in_flight": set(self._wb_in_flight),
            "core": self.core.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported Tile state version {state.get('version')!r}"
            )
        self.l1.load_state(state["l1"])
        self._wb_in_flight = set(state["wb_in_flight"])
        self.core.load_state(state["core"])

    def _issue_one(self, cycle: int) -> bool:
        """Issue the core's next access; False when structurally stalled."""
        access = self.core.peek()
        addr = access.address
        outcome = self.l1.access(addr, access.is_write)
        if outcome == HIT:
            if access.is_write:
                self._commit_store(addr)
            self.core.issued(cycle, was_hit=True)
            return True
        measured = not self.core.in_warmup()
        entry = self.l1.mshr.lookup(addr)
        if entry is not None:
            self.l1.mshr.coalesce(addr, access.is_write, cycle, measured)
            self.core.issued(cycle, was_hit=False, coalesced=True)
            return True
        if self.l1.mshr.full():
            self.core.stalled()
            return False
        is_getx = access.is_write  # MISS with a store, or UPGRADE
        self.l1.mshr.allocate(addr, is_getx, cycle, measured)
        self._send_request(addr, is_getx)
        self.core.issued(cycle, was_hit=False, coalesced=False)
        return True

    def _send_request(self, addr: int, is_getx: bool) -> None:
        kind = MessageKind.GETX if is_getx else MessageKind.GETS
        self.system.send_message(
            Message(
                kind=kind,
                addr=addr,
                src=self.node,
                dst=self.system.config.home_node(addr),
                requester=self.node,
                issue_cycle=self.system.cycle,
            )
        )

    def _commit_store(self, addr: int) -> None:
        """A store retires: the line takes its next trace value."""
        new_value = self.system.pool.fresh_write_value(addr)
        self.l1.write_data(addr, new_value)

    # -- inbound protocol messages --------------------------------------------------
    def handle(self, msg: Message, packet: Optional["Packet"] = None) -> None:
        kind = msg.kind
        if kind is MessageKind.DATA:
            self._fill(msg)
        elif kind is MessageKind.INV:
            self._invalidate(msg)
        elif kind is MessageKind.RECALL:
            self._recall(msg)
        elif kind is MessageKind.WB_ACK:
            self._wb_in_flight.discard(msg.addr)
        else:  # pragma: no cover - routing guard
            raise ValueError(f"tile {self.node} got unexpected {kind}")

    def _invalidate(self, msg: Message) -> None:
        """INV: acknowledge immediately; stale in-flight S fills get a
        use-once deferral (GEMS-style) instead of a transient-state dance."""
        present = self.l1.invalidate(msg.addr) is not None
        entry = self.l1.mshr.lookup(msg.addr)
        if entry is not None and not present:
            # A grant may be in flight toward us; invalidate it on arrival.
            entry.pending_inv = True
        self.system.send_message(
            Message(
                kind=MessageKind.INV_ACK,
                addr=msg.addr,
                src=self.node,
                dst=msg.src,
            )
        )

    def _recall(self, msg: Message) -> None:
        line = self.l1.lookup(msg.addr)
        if line is not None and line.state == STATE_M:
            self.l1.invalidate(msg.addr)
            self.l1.stats.recalls += 1
            self.system.send_message(
                Message(
                    kind=MessageKind.RECALL_DATA,
                    addr=msg.addr,
                    src=self.node,
                    dst=msg.src,
                    data=line.data,
                )
            )
            return
        entry = self.l1.mshr.lookup(msg.addr)
        if (
            entry is not None
            and entry.is_write
            and msg.addr not in self._wb_in_flight
        ):
            # Our M grant is in flight (the home set M@us when it sent the
            # DATA, then processed the recalling transaction); answer once
            # the fill lands.
            entry.pending_recall_from = msg.src
            return
        # Otherwise our dirty writeback is in flight; the home will treat
        # it as the recalled data.
        self.l1.invalidate(msg.addr)
        self.system.send_message(
            Message(
                kind=MessageKind.RECALL_NACK,
                addr=msg.addr,
                src=self.node,
                dst=msg.src,
            )
        )

    def _fill(self, msg: Message) -> None:
        addr = msg.addr
        cycle = self.system.cycle
        # Receiving DATA proves the home consumed any WB of ours for this
        # line (it blocks the address until it has).
        self._wb_in_flight.discard(addr)
        entry = self.l1.mshr.release(addr)
        assert msg.data is not None
        victim = self.l1.fill(addr, msg.data, msg.grant_state)
        if victim is not None:
            self._writeback(victim.addr, victim.data)
        if msg.grant_state == STATE_M:
            for issue_cycle, is_write, primary, measured in entry.waiters:
                if is_write:
                    self._commit_store(addr)
                self.core.miss_completed(issue_cycle, cycle, primary, measured)
            if entry.pending_recall_from >= 0:
                # A recall raced with this grant; hand the (now written)
                # line straight back to the home.
                line = self.l1.invalidate(addr)
                assert line is not None
                self.l1.stats.recalls += 1
                self.system.send_message(
                    Message(
                        kind=MessageKind.RECALL_DATA,
                        addr=addr,
                        src=self.node,
                        dst=entry.pending_recall_from,
                        data=line.data,
                    )
                )
            return
        if entry.pending_recall_from >= 0:  # pragma: no cover - invariant
            raise RuntimeError("recall deferred onto a shared grant")
        # Granted S: reads complete; waiting stores need an upgrade round.
        writers = [w for w in entry.waiters if w[1]]
        readers = [w for w in entry.waiters if not w[1]]
        for issue_cycle, _, primary, measured in readers:
            self.core.miss_completed(issue_cycle, cycle, primary, measured)
        if entry.pending_inv:
            # An invalidation raced with this grant: the readers above got
            # their use-once data; drop the line now.
            self.l1.invalidate(addr)
        if writers:
            upgrade = self.l1.mshr.allocate(addr, True, writers[0][0])
            upgrade.waiters = list(writers)
            self._send_request(addr, True)

    def _writeback(self, addr: int, data: bytes) -> None:
        self._wb_in_flight.add(addr)
        self.system.send_message(
            Message(
                kind=MessageKind.WB_DATA,
                addr=addr,
                src=self.node,
                dst=self.system.config.home_node(addr),
                data=data,
            )
        )