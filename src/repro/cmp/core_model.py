"""Trace-driven core model.

Each core replays its synthetic access stream: after the previous access
*issues*, it waits the trace's compute ``gap`` and issues the next one —
unless its miss window (``core_window`` outstanding L1 misses, standing in
for a 4-issue OoO core's MLP) is full or the L1's MSHR file is saturated,
in which case it stalls.  L1 hits complete immediately; misses complete
when the tile fills the line.

The Fig. 5/6/8 metric — average on-chip data access latency of L1 misses —
is accumulated here: one sample per primary (non-coalesced) miss, from
issue to fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workloads.trace import MemoryAccess


@dataclass
class CoreStats:
    accesses_issued: int = 0
    hits: int = 0
    primary_misses: int = 0
    coalesced_misses: int = 0
    stall_cycles: int = 0
    total_miss_latency: int = 0
    measured_primary_misses: int = 0
    measured_miss_latency: int = 0
    finished_cycle: int = -1

    @property
    def avg_miss_latency(self) -> float:
        """Steady-state average (falls back to all misses if no warmup)."""
        if self.measured_primary_misses > 0:
            return self.measured_miss_latency / self.measured_primary_misses
        if self.primary_misses == 0:
            return 0.0
        return self.total_miss_latency / self.primary_misses


class CoreModel:
    """One trace-replaying core; the tile drives it each cycle.

    The first ``warmup`` accesses populate the caches but are excluded from
    the latency metric (standard cold-start exclusion); the paper's numbers
    come from gem5 checkpoints past initialization, which this stands in
    for.
    """

    def __init__(self, node: int, trace: List[MemoryAccess], window: int = 4,
                 warmup: int = 0):
        self.node = node
        self.trace = trace
        self.window = window
        self.warmup = warmup
        self.position = 0
        self.outstanding = 0  # in-flight misses (primary + coalesced)
        self.next_issue_cycle = trace[0].gap if trace else 0
        self.stats = CoreStats()

    def in_warmup(self) -> bool:
        return self.position < self.warmup

    # -- state queries -------------------------------------------------------
    def done(self) -> bool:
        return self.position >= len(self.trace) and self.outstanding == 0

    def trace_exhausted(self) -> bool:
        return self.position >= len(self.trace)

    def can_issue(self, cycle: int) -> bool:
        return (
            self.position < len(self.trace)
            and cycle >= self.next_issue_cycle
            and self.outstanding < self.window
        )

    def peek(self) -> MemoryAccess:
        return self.trace[self.position]

    # -- transitions (called by the tile) ----------------------------------------
    def issued(self, cycle: int, was_hit: bool, coalesced: bool = False) -> None:
        """The current access entered the memory system."""
        access = self.trace[self.position]
        self.position += 1
        self.stats.accesses_issued += 1
        if was_hit:
            self.stats.hits += 1
        else:
            self.outstanding += 1
            if coalesced:
                self.stats.coalesced_misses += 1
            else:
                self.stats.primary_misses += 1
        if self.position < len(self.trace):
            self.next_issue_cycle = cycle + self.trace[self.position].gap

    def stalled(self) -> None:
        self.stats.stall_cycles += 1

    def miss_completed(self, issue_cycle: int, cycle: int,
                       primary: bool, measured: bool = True) -> None:
        """A fill satisfied one waiting access of this core."""
        self.outstanding -= 1
        if self.outstanding < 0:  # pragma: no cover - invariant guard
            raise RuntimeError(f"core {self.node}: negative outstanding count")
        if primary:
            self.stats.total_miss_latency += cycle - issue_cycle
            if measured:
                self.stats.measured_primary_misses += 1
                self.stats.measured_miss_latency += cycle - issue_cycle

    def finished(self, cycle: int) -> None:
        if self.stats.finished_cycle < 0:
            self.stats.finished_cycle = cycle

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Replay position + stats; the trace itself is rebuilt from the
        workload seed, never serialized."""
        return {
            "version": 1,
            "position": self.position,
            "outstanding": self.outstanding,
            "next_issue_cycle": self.next_issue_cycle,
            "stats": dict(self.stats.__dict__),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported CoreModel state version {state.get('version')!r}"
            )
        self.position = state["position"]
        self.outstanding = state["outstanding"]
        self.next_issue_cycle = state["next_issue_cycle"]
        self.stats.__dict__.update(state["stats"])
