"""The five evaluated system schemes (paper §4.1).

===========  ===============================================================
``baseline``  no compression anywhere (the Fig. 7 energy normalization)
``ideal``     cache compression with zero de/compression overhead (the
              Fig. 5/6/8 latency normalization: "the same system with cache
              compression but without the de/compression overhead")
``cc``        within-cache compression: a (de)compressor in every LLC bank;
              reads pay decompression before the response leaves the bank;
              NoC traffic is uncompressed
``cnc``       cache + NoC compression as in [9]: CC plus a (de)compressor in
              every NI — compress at injection, decompress at ejection
              (the two-level overhead the paper observes in Fig. 5/6)
``disco``     in-network compression: DISCO routers overlap engine latency
              with queueing; banks send/store lines in compressed form with
              no bank-side latency; only the non-overlapped residue is paid
              at ejection
===========  ===============================================================

All compressing schemes share the same algorithm instance, hence identical
compressed sizes and identical LLC capacity benefit — the paper's fairness
condition ("the same compression algorithm with identical compression rate,
speed and overhead is employed in CC, CNC and DISCO").
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Optional

from repro.compression.base import CompressionAlgorithm
from repro.compression.registry import get_algorithm, get_timing
from repro.core.config import DiscoConfig

SCHEME_NAMES = ("baseline", "ideal", "cc", "cnc", "disco")


@dataclass(frozen=True)
class SchemePolicy:
    """Where compression happens and what latency each step charges."""

    name: str
    algorithm_name: str
    store_compressed: bool
    bank_read_decompress_cycles: int
    bank_fill_compress_cycles: int
    ni_compression: bool
    send_compressed_from_bank: bool
    use_disco_routers: bool
    compression_cycles: int
    decompression_cycles: int
    disco: Optional[DiscoConfig] = None

    @property
    def compresses(self) -> bool:
        return self.store_compressed

    def make_algorithm(self, line_size: int = 64) -> CompressionAlgorithm:
        return get_algorithm(self.algorithm_name, line_size=line_size)


def make_scheme(
    name: str,
    algorithm: str = "delta",
    disco: Optional[DiscoConfig] = None,
) -> SchemePolicy:
    """Build one of the five evaluated schemes for a given algorithm."""
    timing = get_timing(algorithm)
    comp = timing.compression_cycles
    decomp = timing.decompression_cycles
    if name == "baseline":
        return SchemePolicy(
            name=name,
            algorithm_name=algorithm,
            store_compressed=False,
            bank_read_decompress_cycles=0,
            bank_fill_compress_cycles=0,
            ni_compression=False,
            send_compressed_from_bank=False,
            use_disco_routers=False,
            compression_cycles=comp,
            decompression_cycles=decomp,
        )
    if name == "ideal":
        return SchemePolicy(
            name=name,
            algorithm_name=algorithm,
            store_compressed=True,
            bank_read_decompress_cycles=0,
            bank_fill_compress_cycles=0,
            ni_compression=False,
            send_compressed_from_bank=False,
            use_disco_routers=False,
            compression_cycles=comp,
            decompression_cycles=decomp,
        )
    if name == "cc":
        return SchemePolicy(
            name=name,
            algorithm_name=algorithm,
            store_compressed=True,
            bank_read_decompress_cycles=decomp,
            bank_fill_compress_cycles=comp,
            ni_compression=False,
            send_compressed_from_bank=False,
            use_disco_routers=False,
            compression_cycles=comp,
            decompression_cycles=decomp,
        )
    if name == "cnc":
        return SchemePolicy(
            name=name,
            algorithm_name=algorithm,
            store_compressed=True,
            bank_read_decompress_cycles=decomp,
            bank_fill_compress_cycles=comp,
            ni_compression=True,
            send_compressed_from_bank=False,
            use_disco_routers=False,
            compression_cycles=comp,
            decompression_cycles=decomp,
        )
    if name == "disco":
        disco_config = disco or DiscoConfig(algorithm=algorithm)
        if disco_config.algorithm != algorithm:
            disco_config = _dc_replace(disco_config, algorithm=algorithm)
        return SchemePolicy(
            name=name,
            algorithm_name=algorithm,
            store_compressed=True,
            bank_read_decompress_cycles=0,
            bank_fill_compress_cycles=0,
            ni_compression=False,
            send_compressed_from_bank=True,
            use_disco_routers=True,
            compression_cycles=comp,
            decompression_cycles=decomp,
            disco=disco_config,
        )
    raise KeyError(f"unknown scheme {name!r}; choose from {SCHEME_NAMES}")
