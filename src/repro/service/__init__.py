"""The always-on campaign service (see DESIGN.md §4g).

Public surface:

- :class:`~repro.service.scheduler.CampaignService` — the supervised
  scheduler (priority queues, work stealing, retries, quarantine,
  result streaming);
- :class:`~repro.service.admission.AdmissionController` /
  :class:`~repro.service.admission.Overloaded` — admission control and
  the structured shed response;
- :class:`~repro.service.jobs.Job` — a submission and its event stream;
- :func:`~repro.service.http.serve` /
  :class:`~repro.service.http.ServiceHTTPServer` — the stdlib HTTP
  frontend (``python -m repro.service`` runs it);
- :class:`~repro.service.client.ServiceClient` — a thin client.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionStats,
    Overloaded,
    TokenBucket,
)
from repro.service.client import OverloadedError, ServiceClient
from repro.service.http import ServiceHTTPServer, serve
from repro.service.jobs import Job, WorkUnit, spec_from_payload
from repro.service.scheduler import CampaignService, ServiceStats

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CampaignService",
    "Job",
    "Overloaded",
    "OverloadedError",
    "ServiceClient",
    "ServiceHTTPServer",
    "ServiceStats",
    "TokenBucket",
    "WorkUnit",
    "serve",
    "spec_from_payload",
]
