"""Service job model: submissions, work units, and result streams.

A **job** is one client submission — a sweep of simulation specs, fault
campaigns, or both — broken into independently schedulable **work
units**.  Units are what the scheduler queues, steals, retries and
journals; the job aggregates their outcomes and publishes an ordered
event stream (``result`` / ``failed`` per unit, one terminal ``done``)
that any number of consumers can follow live or replay after the fact —
results stream as specs complete, not batch-at-end.

Unit payloads are parsed defensively at the submission boundary: an
unknown ``RunSpec`` field or a malformed campaign payload is the
*client's* error and is rejected before admission ever charges a token.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import fields as _dc_fields
from typing import Dict, Iterator, List, Optional

from repro.experiments.runner import RunSpec, spec_key

#: Work-unit kinds.
UNIT_SPEC = "spec"
UNIT_CAMPAIGN = "campaign"

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_SPEC_FIELDS = {field.name for field in _dc_fields(RunSpec)}
_UNIT_SEQ = itertools.count()


def spec_from_payload(payload: Dict) -> RunSpec:
    """Build a :class:`RunSpec` from a client dict, rejecting junk.

    Unknown fields raise ``ValueError`` naming them (a typo'd
    ``acesses_per_core`` must not silently run the default-sized spec and
    then cache it under a key the client never meant to address).
    """
    if not isinstance(payload, dict):
        raise ValueError(f"spec payload must be an object, got {payload!r}")
    unknown = sorted(set(payload) - _SPEC_FIELDS)
    if unknown:
        raise ValueError(f"unknown RunSpec fields: {', '.join(unknown)}")
    if "scheme" not in payload or "workload" not in payload:
        raise ValueError("a spec needs at least 'scheme' and 'workload'")
    return RunSpec(**payload)


class WorkUnit:
    """One schedulable unit: a simulation spec or a fault campaign.

    Mutable scheduling state lives here (attempt counters, backoff
    deadline, enqueue stamp); the payload itself is immutable.  Failure
    accounting distinguishes *errors* (the unit's own exception — retried
    once, then failed) from *interruptions* (a worker died under it —
    retried with backoff until the crash-loop quarantine bound), exactly
    mirroring the batch runner's journal semantics.
    """

    __slots__ = (
        "job",
        "index",
        "kind",
        "spec",
        "payload",
        "key",
        "seq",
        "errors",
        "interruptions",
        "enqueued",
        "ready_at",
        "last_error",
    )

    def __init__(self, job: "Job", index: int, kind: str, payload):
        self.job = job
        self.index = index
        self.kind = kind
        self.seq = next(_UNIT_SEQ)
        if kind == UNIT_SPEC:
            self.spec: Optional[RunSpec] = payload
            self.payload = None
            self.key = spec_key(payload)
        elif kind == UNIT_CAMPAIGN:
            self.spec = None
            self.payload = payload
            self.key = f"campaign-{job.job_id}-{index}"
        else:
            raise ValueError(f"unknown unit kind {kind!r}")
        self.errors = 0
        self.interruptions = 0
        self.enqueued = 0.0  # monotonic stamp, set at (re)enqueue
        self.ready_at = 0.0  # backoff deadline; 0 = immediately eligible
        self.last_error: Optional[str] = None

    def order_key(self):
        """Heap key: client priority first, then global FIFO order."""
        return (self.job.priority, self.seq)

    def describe(self) -> str:
        if self.spec is not None:
            return (
                f"{self.spec.scheme}/{self.spec.algorithm}:"
                f"{self.spec.workload}(seed {self.spec.seed})"
            )
        return self.key


class Job:
    """One admitted submission and its event stream.

    ``correlation`` is the fleet-wide trace token minted at submission
    (one per job; a deployment's edge proxy may pass its own through).
    It rides every dispatch, journal line, worker log record, kernel
    annotation and flight record the job's units produce, so one grep
    reconstructs the job's full lifecycle across processes.
    """

    def __init__(
        self,
        client: str,
        priority: int,
        units_payload: List,
        job_id: Optional[str] = None,
        correlation: Optional[str] = None,
    ):
        self.job_id = job_id or uuid.uuid4().hex[:12]
        self.correlation = correlation or f"c-{uuid.uuid4().hex[:16]}"
        self.client = client
        self.priority = priority
        self.submitted_ts = time.time()
        self.submitted_mono = time.monotonic()
        self.finished_ts: Optional[float] = None
        self.units: List[WorkUnit] = []
        for index, (kind, payload) in enumerate(units_payload):
            self.units.append(WorkUnit(self, index, kind, payload))
        if not self.units:
            raise ValueError("a job must carry at least one unit")
        self.results: Dict[int, Dict] = {}
        self.failures: Dict[int, Dict] = {}
        self._events: List[Dict] = []
        self._cond = threading.Condition()
        self._started = False
        self._done_claimed = False

    # -- state ---------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.units)

    @property
    def state(self) -> str:
        with self._cond:
            if len(self.results) + len(self.failures) >= self.total:
                return FAILED if self.failures else DONE
            return RUNNING if self._started else QUEUED

    def snapshot(self) -> Dict:
        """The ``/status`` view: JSON-able, cheap, lock-consistent."""
        with self._cond:
            resolved = len(self.results) + len(self.failures)
            if resolved >= self.total:
                state = FAILED if self.failures else DONE
            else:
                state = RUNNING if self._started else QUEUED
            return {
                "job": self.job_id,
                "correlation": self.correlation,
                "client": self.client,
                "priority": self.priority,
                "state": state,
                "units": self.total,
                "completed": len(self.results),
                "failed": len(self.failures),
                "submitted_ts": self.submitted_ts,
                "finished_ts": self.finished_ts,
                "age_seconds": round(
                    time.monotonic() - self.submitted_mono, 3
                ),
            }

    # -- event stream --------------------------------------------------------
    def publish(self, event: Dict) -> None:
        """Append one stream event and wake every follower."""
        with self._cond:
            self._events.append(event)
            if event.get("type") in ("result", "failed"):
                self._started = True
                index = event["index"]
                if event["type"] == "result":
                    self.results[index] = event
                else:
                    self.failures[index] = event
            if event.get("type") == "done":
                self.finished_ts = time.time()
            self._cond.notify_all()

    def mark_started(self) -> None:
        with self._cond:
            self._started = True

    def finished(self) -> bool:
        with self._cond:
            return len(self.results) + len(self.failures) >= self.total

    def claim_done(self) -> bool:
        """True exactly once, when every unit has resolved — the caller
        that wins the claim publishes the terminal ``done`` event (two
        workers resolving the job's last two units race here)."""
        with self._cond:
            if self._done_claimed:
                return False
            if len(self.results) + len(self.failures) < self.total:
                return False
            self._done_claimed = True
            return True

    def stream(
        self, timeout: Optional[float] = None, poll: float = 0.5
    ) -> Iterator[Dict]:
        """Yield events from the beginning, following live until the
        terminal ``done`` event (multiple concurrent consumers and late
        joiners replay the same ordered history).

        ``timeout`` bounds the *total* wait for a terminal event; on
        expiry a synthetic ``{"type": "timeout"}`` is yielded and the
        stream ends — a consumer never hangs on a wedged job.
        """
        index = 0
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            with self._cond:
                while index >= len(self._events):
                    if deadline is not None and time.monotonic() >= deadline:
                        break
                    self._cond.wait(timeout=poll)
                fresh = self._events[index:]
                index += len(fresh)
            for event in fresh:
                yield event
                if event.get("type") == "done":
                    return
            if not fresh and deadline is not None:
                if time.monotonic() >= deadline:
                    yield {"type": "timeout", "job": self.job_id}
                    return
