"""The always-on campaign scheduler.

:class:`CampaignService` turns the batch runner into a supervised
service: clients submit jobs (spec sweeps and/or fault campaigns) at any
time, an admission layer sheds overload with structured
:class:`~repro.service.admission.Overloaded` responses, and admitted
work flows through per-worker priority queues into the existing
``ProcessPoolExecutor`` machinery, streaming each unit's result the
moment it completes.

Scheduling model
----------------
Each of ``workers`` dispatcher threads owns a priority heap (ordered by
client priority, then global FIFO sequence).  A submission shards its
units round-robin across the heaps; an idle worker first drains its own
heap, then **steals** the best unit from the most-backlogged peer — so
one giant sweep cannot convoy small jobs behind it, and no worker idles
while any queue holds work.  Units backing off after a failure sit in a
shared delayed set until their deadline, then rejoin the least-loaded
heap.

Robustness (the PR 7 machinery, extended)
-----------------------------------------
- Every spec unit journals ``pending``/``running``/``done``/``failed``/
  ``quarantined`` through the runner's locked campaign journal, so a
  killed service resumes exactly like a killed batch.
- A worker-process death (``BrokenProcessPool`` — OOM, chaos SIGKILL, or
  the heartbeat watchdog killing a wedged worker) respawns the pool once
  per generation and counts an *interruption* against the in-flight
  units; a unit interrupted ``REPRO_QUARANTINE_AFTER`` consecutive times
  is quarantined instead of retried forever.  Ordinary exceptions get
  one retry with capped jittered backoff, then fail the unit.
- Stale heartbeat files are swept at startup
  (:func:`~repro.experiments.runner.clean_stale_heartbeats`) and the
  heartbeat watchdog is armed whenever ``REPRO_WATCHDOG_SECONDS`` is
  set, exactly as in the batch runner.
- Results publish through the same content-addressed caches (memo +
  atomic-rename disk entries), so many service processes — on many hosts
  — can share one cache directory without corrupting an entry.

Every decision is counted (:class:`ServiceStats` +
:class:`~repro.service.admission.AdmissionStats`, both registered in a
:class:`~repro.sim.stats.StatsRegistry`) and sampled into a
:class:`~repro.telemetry.sampler.WallClockSeries` (queue depth, queue
age, shed markers) for the ``/stats`` endpoint.
"""

from __future__ import annotations

import heapq
import logging
import os
import signal
import threading
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as _FutureTimeout,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments import runner as _runner
from repro.faults.campaign import run_campaign_payload
from repro.service.admission import (
    AdmissionController,
    AdmissionStats,
    Overloaded,
)
from repro.service.jobs import (
    UNIT_CAMPAIGN,
    UNIT_SPEC,
    Job,
    WorkUnit,
    spec_from_payload,
)
from repro.sim.stats import StatsRegistry
from repro.telemetry import flight as _flight
from repro.telemetry.log import correlation_scope, get_logger
from repro.telemetry.sampler import WallClockSeries
from repro.telemetry.slo import SLOSpec, SLOStatus, default_slos, evaluate_all

_LOG = get_logger("repro.service")

#: Cap on the exponential retry backoff (seconds) — matches the batch
#: runner's resume backoff cap.
_BACKOFF_CAP = 5.0


@dataclass
class ServiceStats:
    """Scheduler counters (the ``service`` stat group)."""

    #: Work units resolved successfully (fresh simulation or cache).
    units_completed: int = 0
    #: Units that exhausted their error retry and failed.
    units_failed: int = 0
    #: Units quarantined after the crash-loop interruption bound.
    units_quarantined: int = 0
    #: Units served straight from the memo/disk caches (no pool trip).
    cache_hits: int = 0
    #: Jobs whose every unit completed.
    jobs_completed: int = 0
    #: Jobs with at least one failed/quarantined unit.
    jobs_failed: int = 0
    #: Units a worker took from a peer's queue.
    steals: int = 0
    #: Re-enqueues after an error or interruption.
    retries: int = 0
    #: Process pools torn down and respawned after a worker death.
    worker_respawns: int = 0
    #: Sum of unit queue ages (milliseconds) at dispatch + sample count;
    #: ``queue_age_ms_total / queue_age_samples`` is the mean queue age.
    queue_age_ms_total: int = 0
    queue_age_samples: int = 0

    def counters(self) -> Dict[str, int]:
        """Registry-provider view of the group."""
        return {
            "units_completed": self.units_completed,
            "units_failed": self.units_failed,
            "units_quarantined": self.units_quarantined,
            "cache_hits": self.cache_hits,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "steals": self.steals,
            "retries": self.retries,
            "worker_respawns": self.worker_respawns,
            "queue_age_ms_total": self.queue_age_ms_total,
            "queue_age_samples": self.queue_age_samples,
        }


def _quarantine_after() -> int:
    return _runner._quarantine_after()


def _pool_worker_init() -> None:
    """Restore default signal dispositions in pool workers.

    The service's main process installs a graceful SIGTERM handler;
    forked pool workers inherit it, which would make them *swallow* the
    SIGTERM the executor itself sends during broken-pool cleanup — the
    worker lingers, the executor's join never returns, and interpreter
    shutdown wedges.  Workers must die on SIGTERM and ignore the
    terminal's SIGINT (the main process coordinates shutdown)."""
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class CampaignService:
    """A supervised, always-on front for the campaign runner."""

    def __init__(
        self,
        workers: Optional[int] = None,
        rate: float = 8.0,
        burst: float = 32.0,
        max_queue_depth: int = 256,
        error_retries: int = 1,
        registry: Optional[StatsRegistry] = None,
        slos: Optional[Sequence[SLOSpec]] = None,
    ):
        self.workers = max(1, workers or _runner.default_jobs())
        self.error_retries = max(0, error_retries)
        self.stats = ServiceStats()
        self.admission = AdmissionController(
            rate=rate,
            burst=burst,
            max_queue_depth=max_queue_depth,
            stats=AdmissionStats(),
        )
        self.registry = registry if registry is not None else StatsRegistry()
        self.registry.register("service", self.stats.counters)
        self.registry.register("admission", self.admission.stats.counters)
        self.series = WallClockSeries()
        self.jobs: Dict[str, Job] = {}
        self.started_mono: Optional[float] = None
        #: Declarative objectives evaluated over ``series`` (read-only —
        #: SLO state never feeds back into scheduling decisions).
        self.slos: List[SLOSpec] = list(
            slos if slos is not None else default_slos()
        )
        self._slo_lock = threading.Lock()
        self._slo_last = 0.0
        self._slo_burning: Dict[str, float] = {}
        #: Completed spec units per compression scheme (the ``/metrics``
        #: per-scheme rate labels).
        self._scheme_completed: Dict[str, int] = {}
        #: Recent queue-age observations (ms) for the exposition histogram.
        self._queue_ages: List[int] = []

        self._cond = threading.Condition()
        self._heaps: List[List[Tuple[Tuple[int, int], WorkUnit]]] = [
            [] for _ in range(self.workers)
        ]
        self._delayed: List[WorkUnit] = []
        self._inflight = 0
        self._shard_rr = 0
        self._accepting = False
        self._stopping = False
        self._threads: List[threading.Thread] = []

        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock = threading.Lock()
        self._watchdog = None
        self._hb_set_here = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "CampaignService":
        if self._threads:
            raise RuntimeError("service already started")
        # Sweep heartbeat orphans from previous (SIGKILLed) incarnations
        # before any supervision arms — see satellite in runner.
        swept = _runner.clean_stale_heartbeats()
        if swept:
            _LOG.info("startup: removed %d stale heartbeat files", swept)
        self._watchdog, self._hb_set_here = _runner._start_watchdog()
        self._accepting = True
        self.started_mono = time.monotonic()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        _LOG.info(
            "service up: %d workers, rate %.1f/s burst %.0f, "
            "queue bound %d",
            self.workers,
            self.admission.rate,
            self.admission.burst,
            self.admission.max_queue_depth,
        )
        return self

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> bool:
        """Stop accepting, optionally drain the backlog, stop everything.

        Returns True when the backlog drained inside ``timeout`` (always
        True with ``drain=False``, which abandons queued units).
        """
        deadline = time.monotonic() + timeout
        drained = True
        with self._cond:
            self._accepting = False
            self._cond.notify_all()
        if drain:
            with self._cond:
                while self.queue_depth() > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        drained = False
                        break
                    self._cond.wait(timeout=min(0.25, remaining))
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        _runner._stop_watchdog(self._watchdog, self._hb_set_here)
        self._watchdog = None
        _LOG.info(
            "service down (%s)", "drained" if drained else "abandoned backlog"
        )
        return drained

    # -- introspection -------------------------------------------------------
    def queue_depth(self) -> int:
        """Queued + delayed + in-flight units (callers may hold _cond)."""
        return (
            sum(len(heap) for heap in self._heaps)
            + len(self._delayed)
            + self._inflight
        )

    def drain_rate(self, seconds: float = 30.0) -> float:
        """Recent completion throughput (units/second)."""
        return self.series.rate("completed", seconds)

    def snapshot(self):
        """One immutable sample of every service counter group."""
        return self.registry.snapshot()

    def live(self) -> bool:
        """Liveness: the dispatcher threads are running."""
        return bool(self._threads) and all(
            thread.is_alive() for thread in self._threads
        )

    @property
    def accepting(self) -> bool:
        return self._accepting

    def scheme_completed(self) -> Dict[str, int]:
        """Completed spec units per scheme (for labelled exposition)."""
        with self._cond:
            return dict(self._scheme_completed)

    def queue_age_observations(self) -> List[int]:
        """Recent per-unit queue ages at dispatch (milliseconds)."""
        with self._cond:
            return list(self._queue_ages)

    def heartbeat_lags(self) -> Dict[int, float]:
        """Seconds since each worker's heartbeat file was refreshed."""
        directory = os.environ.get("REPRO_HEARTBEAT_DIR", "").strip()
        if not directory:
            return {}
        lags: Dict[int, float] = {}
        try:
            for path in Path(directory).glob("hb_*.json"):
                try:
                    pid = int(path.stem.split("_", 1)[1])
                except (IndexError, ValueError):
                    continue
                lags[pid] = round(time.time() - path.stat().st_mtime, 3)
        except OSError:
            return lags
        return lags

    def ready(self) -> Tuple[bool, Dict]:
        """Readiness + detail: accepting, with queue headroom, workers
        alive, and (when supervision is on) fresh heartbeats.

        ``detail["reasons"]`` names every failing condition — an
        unready probe must say *why* (stale heartbeat pids, queue over
        depth, dead dispatchers) instead of a bare 503.
        """
        with self._cond:
            depth = self.queue_depth()
        reasons: List[str] = []
        if not self._accepting:
            reasons.append("not accepting submissions (draining or stopped)")
        if not self.live():
            dead = [
                thread.name
                for thread in self._threads
                if not thread.is_alive()
            ]
            reasons.append(
                "dispatcher threads dead: " + (", ".join(dead) or "all")
            )
        if depth >= self.admission.max_queue_depth:
            reasons.append(
                f"queue depth {depth} at/over bound "
                f"{self.admission.max_queue_depth}"
            )
        stale = self._stale_heartbeats()
        if stale:
            reasons.append(
                "stale heartbeat pids: "
                + ", ".join(f"{pid} ({age:.1f}s)" for pid, age in stale)
            )
        slo_status = self.evaluate_slos()
        burning = [s for s in slo_status if not s.ok]
        detail = {
            "accepting": self._accepting,
            "queue_depth": depth,
            "max_queue_depth": self.admission.max_queue_depth,
            "workers_alive": self.live(),
            "heartbeats": self._heartbeat_summary(),
            "slo": [status.to_dict() for status in slo_status],
            "slo_burning": [status.name for status in burning],
            "reasons": reasons,
        }
        ok = not reasons
        detail["ready"] = ok
        return ok, detail

    def _stale_heartbeats(self) -> List[Tuple[int, float]]:
        """Heartbeat pids older than the watchdog budget (or 60s when no
        watchdog is armed) — the readiness probe's staleness evidence."""
        budget = 60.0
        env = os.environ.get("REPRO_WATCHDOG_SECONDS", "").strip()
        if env:
            try:
                budget = max(1.0, float(env))
            except ValueError:
                pass
        return sorted(
            (pid, age)
            for pid, age in self.heartbeat_lags().items()
            if age > budget
        )

    def _heartbeat_summary(self) -> Dict:
        """Worker heartbeat freshness (rides the PR 7 heartbeat files)."""
        directory = os.environ.get("REPRO_HEARTBEAT_DIR", "").strip()
        summary = {"dir": directory or None, "workers": 0, "freshest_age": None}
        if not directory:
            return summary
        lags = self.heartbeat_lags()
        summary["workers"] = len(lags)
        if lags:
            summary["freshest_age"] = round(min(lags.values()), 3)
            summary["ages"] = {str(pid): age for pid, age in lags.items()}
        return summary

    # -- SLO evaluation ------------------------------------------------------
    def evaluate_slos(self, publish: bool = False) -> List[SLOStatus]:
        """Evaluate every objective over the wall-clock rings.

        With ``publish=True`` (the dispatch-path throttle calls it this
        way) a *newly burning* objective records a ``slo_burn`` marker
        into the series and publishes an ``{"type": "slo_burn"}`` event
        on every unfinished job's stream, so a client watching
        ``/stream`` sees the fleet degrade in-band; recoveries publish
        ``slo_recovered``.  Read-only with respect to scheduling.
        """
        elapsed = (
            time.monotonic() - self.started_mono
            if self.started_mono is not None
            else 0.0
        )
        statuses = evaluate_all(self.slos, self.series, elapsed=elapsed)
        if not publish:
            return statuses
        with self._slo_lock:
            for status in statuses:
                was_burning = status.name in self._slo_burning
                if not status.ok and not was_burning:
                    self._slo_burning[status.name] = status.burn_rate
                    self.series.record(slo_burn=1)
                    _LOG.warning(
                        "SLO %s burning: %s=%.4g vs objective %.4g "
                        "(burn %.2fx)",
                        status.name,
                        status.metric,
                        status.value if status.value is not None else -1.0,
                        status.objective,
                        status.burn_rate,
                    )
                    self._publish_slo_event("slo_burn", status)
                elif status.ok and was_burning:
                    del self._slo_burning[status.name]
                    _LOG.info("SLO %s recovered", status.name)
                    self._publish_slo_event("slo_recovered", status)
        return statuses

    def _publish_slo_event(self, kind: str, status: SLOStatus) -> None:
        event = {"type": kind, **status.to_dict()}
        for job in list(self.jobs.values()):
            if not job.finished():
                job.publish(dict(event))

    def _maybe_evaluate_slos(self) -> None:
        """Dispatch-path SLO check, throttled to one evaluation per 2s."""
        now = time.monotonic()
        with self._slo_lock:
            if now - self._slo_last < 2.0:
                return
            self._slo_last = now
        self.evaluate_slos(publish=True)

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        specs: Sequence = (),
        campaigns: Sequence[Dict] = (),
        client: str = "anon",
        priority: int = 5,
    ) -> Union[Job, Overloaded]:
        """Admit-or-shed one submission.

        ``specs`` may be :class:`RunSpec` objects or client dicts (parsed
        and validated here); ``campaigns`` are fault-campaign payloads
        for :func:`~repro.faults.campaign.run_campaign_payload`.  Returns
        the queued :class:`Job`, or the :class:`Overloaded` decision —
        never raises for overload, never blocks beyond O(1) bookkeeping.
        """
        units_payload: List[Tuple[str, object]] = []
        for payload in specs:
            if isinstance(payload, _runner.RunSpec):
                units_payload.append((UNIT_SPEC, payload))
            else:
                units_payload.append((UNIT_SPEC, spec_from_payload(payload)))
        for payload in campaigns:
            if not isinstance(payload, dict):
                raise ValueError("campaign payloads must be objects")
            units_payload.append((UNIT_CAMPAIGN, dict(payload)))
        if not units_payload:
            raise ValueError("a submission must carry specs or campaigns")
        if not self._accepting:
            decision = Overloaded(
                reason="queue_full",
                retry_after=self.admission.MAX_RETRY_AFTER,
                client=client,
                detail="service is shutting down",
            )
            self.admission.stats.jobs_shed += 1
            self.admission.stats.units_shed += len(units_payload)
            self.admission.stats.shed_queue_full += 1
            self._record_shed(decision, len(units_payload))
            return decision
        with self._cond:
            depth = self.queue_depth()
            decision = self.admission.admit(
                client,
                len(units_payload),
                depth,
                drain_rate=self.drain_rate(),
            )
            if decision is not None:
                self._record_shed(decision, len(units_payload))
                return decision
            job = Job(client, priority, units_payload)
            self.jobs[job.job_id] = job
            for unit in job.units:
                if unit.kind == UNIT_SPEC:
                    _runner._journal_append(
                        unit.key, "pending", corr=job.correlation
                    )
                self._enqueue_locked(unit)
            self._cond.notify_all()
        self.series.record(queue_depth=depth + len(job.units), admitted=1)
        _flight.recorder(role="service").record(
            "admit",
            job=job.job_id,
            corr=job.correlation,
            client=client,
            units=job.total,
        )
        _LOG.info(
            "admitted job %s: client=%s priority=%d units=%d corr=%s",
            job.job_id,
            client,
            priority,
            job.total,
            job.correlation,
        )
        return job

    def _record_shed(self, decision: Overloaded, units: int) -> None:
        self.series.record(shed=1, shed_units=units)
        _flight.recorder(role="service").record(
            "shed",
            client=decision.client,
            reason=decision.reason,
            units=units,
        )
        _LOG.warning(
            "shed %d units from client %s: %s (retry_after %.2fs)",
            units,
            decision.client,
            decision.reason,
            decision.retry_after,
        )

    def _enqueue_locked(self, unit: WorkUnit) -> None:
        """Place a unit on the least-loaded heap (callers hold _cond)."""
        unit.enqueued = time.monotonic()
        target = min(range(self.workers), key=lambda i: len(self._heaps[i]))
        if len(self._heaps[target]) == len(self._heaps[self._shard_rr]):
            target = self._shard_rr  # break ties round-robin
        self._shard_rr = (self._shard_rr + 1) % self.workers
        heapq.heappush(self._heaps[target], (unit.order_key(), unit))

    # -- the worker loop -----------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        while True:
            unit = self._next_unit(index)
            if unit is None:
                return  # stopping
            try:
                self._execute(unit)
            except BaseException:  # pragma: no cover - last-ditch guard
                _LOG.exception(
                    "worker %d: unhandled error on %s", index, unit.describe()
                )
                self._resolve_failure(unit, "internal scheduler error")
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _next_unit(self, index: int) -> Optional[WorkUnit]:
        """Own heap first, then steal; block when everything is idle."""
        with self._cond:
            while True:
                if self._stopping:
                    return None
                now = time.monotonic()
                self._promote_delayed_locked(now)
                unit = self._pop_locked(index)
                if unit is None:
                    victim = max(
                        (i for i in range(self.workers) if i != index),
                        key=lambda i: len(self._heaps[i]),
                        default=None,
                    )
                    if victim is not None and self._heaps[victim]:
                        unit = self._pop_locked(victim)
                        if unit is not None:
                            self.stats.steals += 1
                if unit is not None:
                    self._inflight += 1
                    return unit
                timeout = 0.25
                if self._delayed:
                    soonest = min(u.ready_at for u in self._delayed)
                    timeout = max(0.01, min(timeout, soonest - now))
                self._cond.wait(timeout=timeout)

    def _pop_locked(self, index: int) -> Optional[WorkUnit]:
        heap = self._heaps[index]
        if not heap:
            return None
        return heapq.heappop(heap)[1]

    def _promote_delayed_locked(self, now: float) -> None:
        if not self._delayed:
            return
        due = [unit for unit in self._delayed if unit.ready_at <= now]
        if not due:
            return
        self._delayed = [u for u in self._delayed if u.ready_at > now]
        for unit in due:
            self._enqueue_locked(unit)

    # -- execution -----------------------------------------------------------
    def _execute(self, unit: WorkUnit) -> None:
        """Dispatch one unit under its job's correlation scope.

        Binding the scope here means every log record, journal append
        and flight event the dispatch produces — on this thread —
        carries the submit-time correlation id without any call site
        naming it; the pool worker gets it as an explicit
        ``_simulate`` argument (contextvars don't cross processes).
        """
        with correlation_scope(unit.job.correlation):
            age_ms = int((time.monotonic() - unit.enqueued) * 1000)
            self.stats.queue_age_ms_total += age_ms
            self.stats.queue_age_samples += 1
            self.series.record(queue_age_ms=age_ms)
            with self._cond:
                self._queue_ages.append(age_ms)
                if len(self._queue_ages) > 4096:
                    del self._queue_ages[:2048]
            _flight.recorder(role="service").record(
                "dispatch",
                unit=unit.describe(),
                job=unit.job.job_id,
                queue_age_ms=age_ms,
            )
            unit.job.mark_started()
            self._maybe_evaluate_slos()
            if unit.kind == UNIT_SPEC:
                self._execute_spec(unit)
            else:
                self._execute_campaign(unit)

    def _execute_spec(self, unit: WorkUnit) -> None:
        spec = unit.spec
        mode = _runner._kernel_mode()
        cached = _runner._CACHE.get((spec, mode))
        if cached is None:
            cached = _runner._disk_load(spec)
            if cached is not None:
                _runner._CACHE[(spec, mode)] = cached
        if cached is not None:
            self.stats.cache_hits += 1
            _runner._journal_append(unit.key, "done")
            self._resolve_result(unit, self._spec_summary(unit, cached, True))
            return
        _runner._journal_append(unit.key, "running")
        generation = self._pool_generation
        try:
            future = self._pool_submit(
                _runner._simulate, spec, False, unit.job.correlation
            )
            result = future.result(timeout=_runner._spec_timeout())
        except BrokenProcessPool:
            self._respawn_pool(generation)
            self._interrupted(unit, "worker process died")
            return
        except _FutureTimeout:
            future.cancel()
            self._errored(
                unit, f"spec exceeded {_runner._spec_timeout()}s"
            )
            return
        except Exception as exc:
            self._errored(unit, repr(exc))
            return
        _runner._store(spec, result, verbose=False)
        _runner._journal_append(unit.key, "done")
        self._resolve_result(unit, self._spec_summary(unit, result, False))

    def _execute_campaign(self, unit: WorkUnit) -> None:
        generation = self._pool_generation
        try:
            future = self._pool_submit(run_campaign_payload, unit.payload)
            summary = future.result(timeout=_runner._spec_timeout())
        except BrokenProcessPool:
            self._respawn_pool(generation)
            self._interrupted(unit, "worker process died")
            return
        except _FutureTimeout:
            future.cancel()
            self._errored(
                unit, f"campaign exceeded {_runner._spec_timeout()}s"
            )
            return
        except Exception as exc:
            self._errored(unit, repr(exc))
            return
        event = {
            "type": "result",
            "job": unit.job.job_id,
            "correlation": unit.job.correlation,
            "index": unit.index,
            "key": unit.key,
            "campaign": summary,
        }
        self._resolve_result(unit, event)

    def _spec_summary(self, unit: WorkUnit, result, cached: bool) -> Dict:
        return {
            "type": "result",
            "job": unit.job.job_id,
            "correlation": unit.job.correlation,
            "index": unit.index,
            "key": unit.key,
            "digest": _runner.result_digest(result),
            "cached": cached,
            "scheme": unit.spec.scheme,
            "workload": unit.spec.workload,
            "cycles": result.cycles,
            "avg_miss_latency": result.avg_miss_latency,
        }

    # -- failure/retry plumbing ----------------------------------------------
    def _interrupted(self, unit: WorkUnit, message: str) -> None:
        """A worker died under the unit — the crash-loop path."""
        unit.interruptions += 1
        unit.last_error = message
        limit = _quarantine_after()
        if unit.interruptions >= limit:
            self.stats.units_quarantined += 1
            if unit.kind == UNIT_SPEC:
                _runner._journal_append(
                    unit.key, "quarantined", attempts=unit.interruptions
                )
            _LOG.warning(
                "quarantined %s after %d interruptions",
                unit.describe(),
                unit.interruptions,
            )
            recorder = _flight.recorder(role="service")
            recorder.record(
                "quarantine",
                unit=unit.describe(),
                job=unit.job.job_id,
                attempts=unit.interruptions,
                error=message,
            )
            recorder.dump(
                "quarantine",
                corr=unit.job.correlation,
                extra={
                    "key": unit.key,
                    "attempts": unit.interruptions,
                    "error": message,
                },
            )
            self._resolve_failure(
                unit,
                f"quarantined after {unit.interruptions} interrupted "
                f"attempts: {message}",
                quarantined=True,
            )
            return
        self._requeue(unit, unit.interruptions, message)

    def _errored(self, unit: WorkUnit, message: str) -> None:
        """The unit's own exception/timeout — bounded ordinary retries."""
        unit.errors += 1
        unit.last_error = message
        if unit.errors > self.error_retries:
            if unit.kind == UNIT_SPEC:
                _runner._journal_append(unit.key, "failed", error=message)
            self._resolve_failure(unit, message)
            return
        self._requeue(unit, unit.errors, message)

    def _requeue(self, unit: WorkUnit, attempt: int, message: str) -> None:
        base = (
            _runner._retry_backoff(unit.spec)
            if unit.kind == UNIT_SPEC
            else _runner._retry_backoff()
        )
        delay = min(max(base, 0.05) * (2 ** (attempt - 1)), _BACKOFF_CAP)
        unit.ready_at = time.monotonic() + delay
        self.stats.retries += 1
        self.series.record(retry=1)
        _flight.recorder(role="service").record(
            "retry",
            unit=unit.describe(),
            job=unit.job.job_id,
            attempt=attempt,
            delay=round(delay, 3),
            error=message,
        )
        _LOG.info(
            "retrying %s in %.2fs (attempt %d): %s",
            unit.describe(),
            delay,
            attempt,
            message,
        )
        with self._cond:
            self._delayed.append(unit)
            self._cond.notify_all()

    # -- resolution ----------------------------------------------------------
    def _resolve_result(self, unit: WorkUnit, event: Dict) -> None:
        self.stats.units_completed += 1
        self.series.record(completed=1)
        if unit.kind == UNIT_SPEC and unit.spec is not None:
            with self._cond:
                self._scheme_completed[unit.spec.scheme] = (
                    self._scheme_completed.get(unit.spec.scheme, 0) + 1
                )
        unit.job.publish(event)
        self._maybe_finish(unit.job)

    def _resolve_failure(
        self, unit: WorkUnit, message: str, quarantined: bool = False
    ) -> None:
        self.stats.units_failed += 1
        self.series.record(failed=1)
        unit.job.publish(
            {
                "type": "failed",
                "job": unit.job.job_id,
                "correlation": unit.job.correlation,
                "index": unit.index,
                "key": unit.key,
                "error": message,
                "quarantined": quarantined,
            }
        )
        self._maybe_finish(unit.job)

    def _maybe_finish(self, job: Job) -> None:
        if not job.claim_done():
            return
        failed = len(job.failures)
        if failed:
            self.stats.jobs_failed += 1
        else:
            self.stats.jobs_completed += 1
        job.publish(
            {
                "type": "done",
                "job": job.job_id,
                "completed": len(job.results),
                "failed": failed,
                "elapsed": round(time.monotonic() - job.submitted_mono, 3),
            }
        )
        _LOG.info(
            "job %s finished: %d completed, %d failed",
            job.job_id,
            len(job.results),
            failed,
        )

    # -- the process pool ----------------------------------------------------
    def _pool_submit(self, fn, *args):
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_worker_init,
                )
            return self._pool.submit(fn, *args)

    def _respawn_pool(self, generation: int) -> None:
        """Tear down a broken pool exactly once per generation (every
        in-flight unit sees the same ``BrokenProcessPool``)."""
        with self._pool_lock:
            if generation != self._pool_generation:
                return  # a sibling already respawned
            self._pool_generation += 1
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self.stats.worker_respawns += 1
        self.series.record(respawn=1)
        _LOG.warning("process pool died; respawned (generation %d)",
                     self._pool_generation)
        recorder = _flight.recorder(role="service")
        recorder.record(
            "broken_pool", generation=self._pool_generation
        )
        recorder.dump(
            "broken_pool",
            extra={
                "generation": self._pool_generation,
                "heartbeat_lags": {
                    str(pid): age
                    for pid, age in self.heartbeat_lags().items()
                },
            },
        )

    # -- logging handshake ---------------------------------------------------
    def enable_verbose(self) -> None:
        from repro.telemetry.log import ensure_level

        ensure_level(logging.INFO)
