"""Stdlib-only HTTP frontend for the campaign service.

A :class:`ThreadingHTTPServer` (one thread per connection, daemonized)
over five routes:

==========================  ==============================================
``POST /submit``            admit a job — ``202 {"job": ...,
                            "correlation": ...}`` or ``429`` with the
                            structured
                            :class:`~repro.service.admission.Overloaded`
                            payload and a ``Retry-After`` header
``GET /status/<job>``       job summary (state, completed/failed counts)
``GET /stream/<job>``       NDJSON event stream, one line per unit result
                            as it completes, terminated by the ``done``
                            event — live result streaming, not
                            batch-at-end; SLO burn/recovery events ride
                            the same stream
``GET /health/live``        200 while the dispatcher threads run
``GET /health/ready``       200 with queue headroom, 503 when saturated
                            or draining (load balancers stop routing);
                            the body's ``reasons`` list names every
                            failing condition
``GET /stats``              counter snapshot (service + admission stat
                            groups) plus the wall-clock series
``GET /metrics``            OpenMetrics/Prometheus text exposition
                            (:mod:`repro.telemetry.metrics`) — counters
                            reconcile with ``/stats`` by construction
``GET /slo``                current SLO evaluations with burn rates
==========================  ==============================================

The submit body is::

    {"client": "alice", "priority": 3,
     "specs": [{"scheme": "disco", "workload": "x264", ...}, ...],
     "campaigns": [{"spec": {...}, "plan": {"seed": 1, ...}}, ...]}

Responses are always JSON; overload answers are bounded O(1) work so a
saturated service still sheds within milliseconds, never hangs a client.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.service.admission import Overloaded
from repro.service.scheduler import CampaignService
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import CONTENT_TYPE, build_service_registry

_LOG = get_logger("repro.service.http")

#: Streams give up after this much total wall time on a wedged job.
STREAM_TIMEOUT = 600.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """The listener; holds the :class:`CampaignService` for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: CampaignService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.0 + Connection: close keeps the stdlib plumbing simple: no
    # chunked framing needed for streams, the socket close is the
    # terminator and urllib consumes it natively.
    protocol_version = "HTTP/1.0"

    # -- plumbing ------------------------------------------------------------
    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self, code: int, payload: dict, retry_after: Optional[float] = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:.3f}")
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/submit":
            self._send_json(404, {"error": "not_found", "path": self.path})
            return
        try:
            body = self._read_body()
            result = self.service.submit(
                specs=body.get("specs") or (),
                campaigns=body.get("campaigns") or (),
                client=str(body.get("client") or "anon"),
                priority=int(body.get("priority", 5)),
            )
        except (ValueError, TypeError) as exc:
            self._send_json(400, {"error": "bad_request", "detail": str(exc)})
            return
        if isinstance(result, Overloaded):
            self._send_json(
                429, result.to_dict(), retry_after=result.retry_after
            )
            return
        self._send_json(
            202,
            {
                "job": result.job_id,
                "units": result.total,
                "correlation": result.correlation,
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.rstrip("/")
        if path == "/health/live":
            alive = self.service.live()
            self._send_json(200 if alive else 503, {"live": alive})
        elif path == "/health/ready":
            ready, detail = self.service.ready()
            detail["ready"] = ready
            self._send_json(200 if ready else 503, detail)
        elif path == "/stats":
            self._send_json(200, self._stats_payload())
        elif path == "/metrics":
            self._send_metrics()
        elif path == "/slo":
            self._send_json(
                200,
                {
                    "slo": [
                        status.to_dict()
                        for status in self.service.evaluate_slos()
                    ]
                },
            )
        elif path.startswith("/status/"):
            self._job_route(path[len("/status/"):], stream=False)
        elif path.startswith("/stream/"):
            self._job_route(path[len("/stream/"):], stream=True)
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})

    def _send_metrics(self) -> None:
        """The OpenMetrics exposition.

        The registry is rebuilt from one :class:`StatsRegistry` snapshot
        per scrape, so concurrent scrapes each see a complete,
        internally consistent document (and counters stay monotonic
        because the underlying stats only ever increase).
        """
        body = build_service_registry(self.service).render().encode()
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _stats_payload(self) -> dict:
        service = self.service
        return {
            "counters": service.snapshot().to_dict(),
            "queue_depth": service.queue_depth(),
            "drain_rate_per_s": round(service.drain_rate(), 4),
            "shed_rate_per_s": round(service.series.rate("shed", 60.0), 4),
            "queue_age_ms_mean_60s": round(
                service.series.mean("queue_age_ms", 60.0), 3
            ),
            "series": service.series.points(limit=256),
        }

    def _job_route(self, job_id: str, stream: bool) -> None:
        job = self.service.jobs.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown_job", "job": job_id})
            return
        if not stream:
            self._send_json(200, job.snapshot())
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for event in job.stream(timeout=STREAM_TIMEOUT):
                self.wfile.write((json.dumps(event) + "\n").encode())
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # the consumer went away; nothing to clean up


def serve(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind and start serving in a daemon thread; returns the server
    (``server.server_address`` carries the actual port for ``port=0``)."""
    server = ServiceHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server
