"""Admission control: per-client rate limits + queue-depth backpressure.

The service's overload contract is *shed-and-retry, never
hang-and-corrupt*: every submission is answered in O(1) — either
admitted, or refused with a structured :class:`Overloaded` carrying a
``retry_after`` hint — and nothing ever queues unboundedly.  Two
independent gates:

- **Token bucket per client** (``rate`` units/second refill, ``burst``
  capacity): a client is charged one token per work unit (spec or
  campaign) it submits, so a thousand-spec sweep draws down the same
  allowance as a thousand one-spec submissions.  An empty bucket sheds
  with ``retry_after`` = the exact refill time for the refused units
  (capped), so a well-behaved client that sleeps the hint succeeds on
  its next attempt.
- **Global queue depth**: when the scheduler's backlog plus the new
  units would exceed ``max_queue_depth``, the submission is shed with a
  drain-time estimate (`overflow / recent throughput`) as the hint —
  backpressure proportional to how far past saturation the service is.

All decisions are counted into :class:`AdmissionStats` (a
``StatsRegistry`` provider group) and both gates are deterministic given
an injected clock, so the tests pin exact boundary behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class Overloaded:
    """A structured load-shed response (the 429 payload).

    ``retry_after`` is seconds; ``reason`` is one of ``rate_limited``,
    ``queue_full`` or ``too_large`` (a single submission bigger than the
    whole queue bound can never be admitted — retrying is futile and the
    reason says so).
    """

    reason: str
    retry_after: float
    client: str = ""
    detail: str = ""

    def to_dict(self) -> Dict:
        return {
            "error": "overloaded",
            "reason": self.reason,
            "retry_after": round(self.retry_after, 3),
            "client": self.client,
            "detail": self.detail,
        }


@dataclass
class AdmissionStats:
    """Admission-decision counters (the ``admission`` stat group)."""

    #: Jobs admitted into the scheduler.
    jobs_admitted: int = 0
    #: Jobs refused with a structured :class:`Overloaded`.
    jobs_shed: int = 0
    #: Work units (specs/campaigns) inside admitted jobs.
    units_admitted: int = 0
    #: Units inside shed jobs (the load that was turned away).
    units_shed: int = 0
    #: Sheds by gate.
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    shed_too_large: int = 0

    def counters(self) -> Dict[str, int]:
        """Registry-provider view of the group."""
        return {
            "jobs_admitted": self.jobs_admitted,
            "jobs_shed": self.jobs_shed,
            "units_admitted": self.units_admitted,
            "units_shed": self.units_shed,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "shed_too_large": self.shed_too_large,
        }


class TokenBucket:
    """The classic leaky counter: ``burst`` capacity, ``rate``/s refill.

    Not thread-safe on its own — the :class:`AdmissionController` holds
    one lock around every decision, which also keeps the multi-field
    admit-or-shed decision atomic.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def take(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False (and no spend) otherwise."""
        self._refill()
        if tokens > self._tokens:
            return False
        self._tokens -= tokens
        return True

    def refill_delay(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (0 when they are)."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Admit-or-shed decisions for the campaign scheduler."""

    #: retry_after hints are capped: past this, the hint stops carrying
    #: information ("come back much later") and a huge value would make
    #: polite clients give up entirely.
    MAX_RETRY_AFTER = 60.0

    def __init__(
        self,
        rate: float = 8.0,
        burst: float = 32.0,
        max_queue_depth: int = 256,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[AdmissionStats] = None,
    ):
        if max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        self.rate = rate
        self.burst = burst
        self.max_queue_depth = max_queue_depth
        self.stats = stats if stats is not None else AdmissionStats()
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
        return bucket

    def _shed(
        self, reason: str, retry_after: float, client: str, units: int,
        detail: str,
    ) -> Overloaded:
        self.stats.jobs_shed += 1
        self.stats.units_shed += units
        field = f"shed_{reason}"
        setattr(self.stats, field, getattr(self.stats, field) + 1)
        return Overloaded(
            reason=reason,
            retry_after=min(retry_after, self.MAX_RETRY_AFTER),
            client=client,
            detail=detail,
        )

    def admit(
        self,
        client: str,
        units: int,
        queue_depth: int,
        drain_rate: float = 0.0,
    ) -> Optional[Overloaded]:
        """``None`` when the submission may enter the scheduler, else the
        :class:`Overloaded` to send back.

        ``queue_depth`` is the scheduler's current backlog (queued +
        running units); ``drain_rate`` its recent completion throughput
        (units/second), used to size the ``queue_full`` hint — 0 falls
        back to a 1s default.
        """
        if units <= 0:
            raise ValueError("a submission must carry at least one unit")
        if units > self.max_queue_depth:
            return self._shed(
                "too_large",
                self.MAX_RETRY_AFTER,
                client,
                units,
                f"{units} units exceed the whole queue bound "
                f"({self.max_queue_depth}); split the submission",
            )
        if queue_depth + units > self.max_queue_depth:
            overflow = queue_depth + units - self.max_queue_depth
            retry_after = (
                overflow / drain_rate if drain_rate > 0 else 1.0
            )
            return self._shed(
                "queue_full",
                max(0.1, retry_after),
                client,
                units,
                f"queue depth {queue_depth}+{units} over bound "
                f"{self.max_queue_depth}",
            )
        bucket = self.bucket(client)
        if not bucket.take(float(units)):
            return self._shed(
                "rate_limited",
                max(0.05, bucket.refill_delay(float(units))),
                client,
                units,
                f"client {client!r} over its {self.rate}/s allowance",
            )
        self.stats.jobs_admitted += 1
        self.stats.units_admitted += units
        return None
