"""``python -m repro.service`` — run the campaign service.

Starts the scheduler and the HTTP frontend, then waits for SIGTERM or
SIGINT; on either it stops accepting, drains the backlog (bounded by
``--drain-timeout``), and exits 0 — the clean-shutdown contract the
chaos drill asserts.  All the runner's environment knobs apply
(``REPRO_CACHE_DIR``, ``REPRO_WATCHDOG_SECONDS``,
``REPRO_QUARANTINE_AFTER``, ``REPRO_SPEC_TIMEOUT``...), so a service is
exactly a long-lived, admission-controlled batch runner.
"""

from __future__ import annotations

import argparse
import logging
import os
import signal
import sys
import tempfile
import threading

from repro.service.http import serve
from repro.service.scheduler import CampaignService
from repro.telemetry.log import ensure_level, get_logger

_LOG = get_logger("repro.service.main")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Always-on campaign service for the DISCO runner.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8423,
        help="listen port (0 = ephemeral; see --port-file)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="dispatcher threads / pool processes (default: REPRO_JOBS "
             "or the CPU count)",
    )
    parser.add_argument(
        "--rate", type=float, default=8.0,
        help="per-client admission rate (work units per second)",
    )
    parser.add_argument(
        "--burst", type=float, default=32.0,
        help="per-client token-bucket capacity",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=256,
        help="global backlog bound before submissions shed",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=60.0,
        help="seconds to finish the backlog on shutdown",
    )
    parser.add_argument(
        "--port-file", default=None,
        help="write the bound port here once listening (for --port 0)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    ensure_level(logging.INFO)
    service = CampaignService(
        workers=args.workers,
        rate=args.rate,
        burst=args.burst,
        max_queue_depth=args.queue_depth,
    ).start()
    server = serve(service, args.host, args.port)
    host, port = server.server_address[:2]
    _LOG.info("listening on http://%s:%d (pid %d)", host, port, os.getpid())
    if args.port_file:
        # Atomic publish so a supervisor polling the file never reads a
        # half-written port number.
        directory = os.path.dirname(os.path.abspath(args.port_file)) or "."
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(str(port))
        os.replace(tmp_name, args.port_file)

    stop = threading.Event()

    def _terminate(signum, frame):
        _LOG.info("signal %d: shutting down", signum)
        stop.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    stop.wait()
    server.shutdown()
    server.server_close()
    drained = service.shutdown(drain=True, timeout=args.drain_timeout)
    if not drained:
        _LOG.warning("backlog not drained inside %.0fs", args.drain_timeout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
