"""A thin stdlib client for the campaign service HTTP API.

Used by the worked examples, the chaos drill and the tests; also a
reasonable template for real clients: submit, honor ``Overloaded``
sheds by sleeping the ``retry_after`` hint, and stream results as they
complete.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class OverloadedError(RuntimeError):
    """The service shed this submission (HTTP 429)."""

    def __init__(self, payload: Dict):
        self.payload = payload
        self.reason = payload.get("reason", "overloaded")
        self.retry_after = float(payload.get("retry_after", 1.0))
        super().__init__(
            f"overloaded ({self.reason}); retry after {self.retry_after}s"
        )


class ServiceClient:
    """Synchronous JSON-over-HTTP client."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------
    def _request(
        self, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        url = f"{self.base_url}{path}"
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            payload = {}
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                pass
            return exc.code, payload

    # -- API -----------------------------------------------------------------
    def submit(
        self,
        specs: Sequence[Dict] = (),
        campaigns: Sequence[Dict] = (),
        client: str = "anon",
        priority: int = 5,
    ) -> str:
        """Submit a job; returns the job id or raises
        :class:`OverloadedError` on a shed (other errors raise
        ``RuntimeError``)."""
        code, payload = self._request(
            "/submit",
            {
                "client": client,
                "priority": priority,
                "specs": list(specs),
                "campaigns": list(campaigns),
            },
        )
        if code == 202:
            return payload["job"]
        if code == 429:
            raise OverloadedError(payload)
        raise RuntimeError(f"submit failed ({code}): {payload}")

    def submit_with_retry(
        self,
        specs: Sequence[Dict] = (),
        campaigns: Sequence[Dict] = (),
        client: str = "anon",
        priority: int = 5,
        attempts: int = 10,
    ) -> str:
        """The polite-client loop: sleep each shed's ``retry_after``."""
        last: Optional[OverloadedError] = None
        for _ in range(attempts):
            try:
                return self.submit(specs, campaigns, client, priority)
            except OverloadedError as exc:
                last = exc
                time.sleep(min(exc.retry_after, 10.0))
        raise last if last is not None else RuntimeError("submit gave up")

    def status(self, job_id: str) -> Dict:
        code, payload = self._request(f"/status/{job_id}")
        if code != 200:
            raise RuntimeError(f"status failed ({code}): {payload}")
        return payload

    def stream(self, job_id: str) -> Iterator[Dict]:
        """Yield the job's NDJSON events as the service emits them."""
        url = f"{self.base_url}/stream/{job_id}"
        with urllib.request.urlopen(url, timeout=self.timeout) as response:
            if response.status != 200:
                raise RuntimeError(f"stream failed ({response.status})")
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str) -> Tuple[List[Dict], List[Dict]]:
        """Stream to completion; returns ``(results, failures)``."""
        results: List[Dict] = []
        failures: List[Dict] = []
        for event in self.stream(job_id):
            if event.get("type") == "result":
                results.append(event)
            elif event.get("type") == "failed":
                failures.append(event)
            elif event.get("type") == "timeout":
                raise TimeoutError(f"job {job_id} stream timed out")
        return results, failures

    def health(self, probe: str = "ready") -> Tuple[bool, Dict]:
        code, payload = self._request(f"/health/{probe}")
        return code == 200, payload

    def stats(self) -> Dict:
        code, payload = self._request("/stats")
        if code != 200:
            raise RuntimeError(f"stats failed ({code}): {payload}")
        return payload
