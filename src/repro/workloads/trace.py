"""Per-core synthetic memory-access trace generation.

A trace is a per-core list of :class:`MemoryAccess` records ``(gap,
is_write, address)``: the core waits ``gap`` compute cycles after the
previous access completes (or issues, for non-blocking misses), then issues
a load or store to ``address`` (a line-granular address).

Address streams are produced from the profile's locality model:

- *temporal locality*: with probability ``profile.locality`` the access
  re-references one of the last few distinct lines (an L1-hit driver);
- *spatial locality*: region accesses walk sequentially with mean run
  length ``profile.sequential_run`` before jumping;
- *jumps* are skewed toward low addresses of the region (a cheap stand-in
  for a Zipf reuse distribution);
- *sharing*: with probability ``profile.shared_fraction`` the target region
  is the shared region (the same address space for every core), otherwise
  the core's private region.

Address layout: the shared region occupies line addresses ``[0,
shared_lines)``; core ``i``'s private region starts at ``PRIVATE_BASE * (i
+ 1)``.  All addresses are line numbers, not byte addresses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, NamedTuple

from repro.workloads.corpus import ValuePool
from repro.workloads.profiles import WorkloadProfile

#: Private-region spacing; large enough that regions never collide and
#: odd so that different cores' regions do not alias onto the same bank
#: and set indices (power-of-two spacing would make every core's line i
#: land in the identical (bank, set) slot).
PRIVATE_BASE = (1 << 32) + 7919

#: Fraction of the working set that is the shared region.
SHARED_WS_FRACTION = 0.25

#: Size of the temporal-reuse window (distinct recent lines).
REUSE_WINDOW = 32


class MemoryAccess(NamedTuple):
    """One memory operation of a core's trace."""

    gap: int
    is_write: bool
    address: int


@dataclass
class TraceSet:
    """The full input of one simulation: traces + the value pool."""

    profile: WorkloadProfile
    n_cores: int
    seed: int
    traces: List[List[MemoryAccess]]
    pool: ValuePool
    #: Per-core length of the warmup sweep prefix (0 when disabled); the
    #: system adds these to its cold-start exclusion window.
    sweep_lengths: List[int] = field(default_factory=list)
    #: Region geometry (line counts), recorded for prefill ordering.
    shared_lines: int = 0
    private_lines: int = 0

    @property
    def total_accesses(self) -> int:
        return sum(len(t) for t in self.traces)

    def touched_addresses(self) -> set:
        out = set()
        for trace in self.traces:
            for access in trace:
                out.add(access.address)
        return out

    def _region_offset(self, addr: int) -> int:
        if addr < PRIVATE_BASE:
            return addr  # shared region
        core = addr // PRIVATE_BASE - 1
        return addr - PRIVATE_BASE * (core + 1)

    def _tier_of(self, addr: int) -> int:
        """0 = cold tail, 1 = warm, 2 = hot (per the walker's tiers)."""
        n_lines = (
            self.shared_lines if addr < PRIVATE_BASE else self.private_lines
        )
        if n_lines <= 0:
            return 0
        offset = self._region_offset(addr)
        if offset < max(1, int(n_lines * _HOT_FRACTION)):
            return 2
        if offset < max(1, int(n_lines * _WARM_FRACTION)):
            return 1
        return 0

    def prefill_order(self) -> List[int]:
        """Footprint ordered cold -> warm -> hot for LLC warm-start.

        Inserting in this order leaves the hot/warm tiers (the
        steady-state resident set) most-recently-used, interleaved fairly
        across all cores' regions and the shared region, so a warm-started
        LLC approximates the state a long cold phase would converge to.
        """
        return sorted(
            self.touched_addresses(),
            key=lambda addr: (
                self._tier_of(addr),
                self._region_offset(addr),
                addr,
            ),
        )


#: Three-tier reuse structure of a region: a small *hot* subset that the
#: L1s capture, a mid-size *warm* subset whose residency is decided by LLC
#: capacity (this is where compression's extra effective capacity pays
#: off), and the full-footprint cold tail.  Fractions of jumps landing in
#: each tier, and each tier's share of the region:
_HOT_FRACTION, _HOT_P = 0.04, 0.45
_WARM_FRACTION, _WARM_P = 0.50, 0.50
# remaining probability: uniform over the whole region (cold tail)


class _RegionWalker:
    """Sequential-run + tiered-jump walker over one address region.

    Real reuse distributions are heavily skewed; the explicit hot/warm/cold
    tiers let the scaled experiments put the warm working set right at the
    (un)compressed LLC boundary, reproducing the paper's capacity-pressure
    regime (DESIGN.md).  Between jumps the walker runs sequentially
    (spatial locality).
    """

    def __init__(self, base: int, n_lines: int, run_length: int,
                 rng: random.Random):
        self.base = base
        self.n_lines = max(1, n_lines)
        self.run_length = max(1, run_length)
        self.rng = rng
        self.hot_lines = max(1, int(self.n_lines * _HOT_FRACTION))
        self.warm_lines = max(1, int(self.n_lines * _WARM_FRACTION))
        self.cursor = 0

    def next_address(self) -> int:
        if self.rng.random() < 1.0 / self.run_length:
            tier = self.rng.random()
            if tier < _HOT_P:
                self.cursor = self.rng.randrange(self.hot_lines)
            elif tier < _HOT_P + _WARM_P:
                self.cursor = self.rng.randrange(self.warm_lines)
            else:
                self.cursor = self.rng.randrange(self.n_lines)
        else:
            self.cursor = (self.cursor + 1) % self.n_lines
        return self.base + self.cursor


def generate_traces(
    profile: WorkloadProfile,
    n_cores: int,
    accesses_per_core: int,
    seed: int = 1,
    line_size: int = 64,
    warmup_sweep: bool = False,
) -> TraceSet:
    """Generate deterministic per-core traces for one benchmark profile.

    With ``warmup_sweep`` each trace starts with a linear read sweep of the
    core's private region plus its slice of the shared region.  The
    simulator's default warm-start mechanism is cheaper: ``CmpSystem``
    pre-fills the LLC directly (checkpoint loading) instead of simulating
    thousands of serialized cold DRAM fills, so the sweep is off by
    default.
    """
    if n_cores < 1 or accesses_per_core < 1:
        raise ValueError("need at least one core and one access")
    shared_lines = max(16, int(profile.working_set_lines * SHARED_WS_FRACTION))
    private_lines = max(
        16, (profile.working_set_lines - shared_lines) // n_cores
    )
    pool = ValuePool(profile, seed=seed, line_size=line_size)
    traces: List[List[MemoryAccess]] = []
    sweep_lengths: List[int] = []
    for core in range(n_cores):
        rng = random.Random((seed * 31_337) ^ (core * 0x5BD1E995) ^ 0xC0FFEE)
        shared_walker = _RegionWalker(
            0, shared_lines, profile.sequential_run, rng
        )
        private_walker = _RegionWalker(
            PRIVATE_BASE * (core + 1), private_lines,
            profile.sequential_run, rng,
        )
        recent: List[int] = []
        trace: List[MemoryAccess] = []
        if warmup_sweep:
            share_lo = shared_lines * core // n_cores
            share_hi = shared_lines * (core + 1) // n_cores
            for line in range(share_lo, share_hi):
                trace.append(MemoryAccess(1, False, line))
            private_base = PRIVATE_BASE * (core + 1)
            for line in range(private_lines):
                trace.append(MemoryAccess(1, False, private_base + line))
        sweep_lengths.append(len(trace))
        for _ in range(accesses_per_core):
            if recent and rng.random() < profile.locality:
                address = recent[rng.randrange(len(recent))]
            elif rng.random() < profile.shared_fraction:
                address = shared_walker.next_address()
            else:
                address = private_walker.next_address()
            if not recent or recent[-1] != address:
                recent.append(address)
                if len(recent) > REUSE_WINDOW:
                    recent.pop(0)
            is_write = rng.random() >= profile.read_fraction
            gap = max(1, int(rng.expovariate(1.0 / profile.mean_gap)))
            trace.append(MemoryAccess(gap, is_write, address))
        traces.append(trace)
    return TraceSet(
        profile=profile,
        n_cores=n_cores,
        seed=seed,
        traces=traces,
        pool=pool,
        sweep_lengths=sweep_lengths,
        shared_lines=shared_lines,
        private_lines=private_lines,
    )
