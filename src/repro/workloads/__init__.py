"""Synthetic PARSEC-like workloads for the DISCO reproduction.

The paper evaluates on PARSEC-2.1 running under gem5.  Neither is available
here, so this package provides the substitution documented in DESIGN.md §1:
per-benchmark *profiles* that reproduce the three workload properties DISCO's
results depend on — the shape of L1-miss traffic through the NoC, the value
compressibility of cache lines, and LLC capacity pressure — as deterministic
synthetic traces.

Public surface:

- :mod:`repro.workloads.patterns` — cache-line value generators;
- :class:`repro.workloads.profiles.WorkloadProfile` and
  :func:`repro.workloads.profiles.get_profile` — the 13 PARSEC benchmarks;
- :class:`repro.workloads.corpus.ValuePool` — address → line-content mapping;
- :func:`repro.workloads.trace.generate_traces` — per-core access streams.
"""

from repro.workloads.patterns import PATTERN_GENERATORS, generate_line
from repro.workloads.profiles import (
    PARSEC_BENCHMARKS,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.corpus import ValuePool, sample_corpus
from repro.workloads.trace import MemoryAccess, TraceSet, generate_traces

__all__ = [
    "PATTERN_GENERATORS",
    "generate_line",
    "PARSEC_BENCHMARKS",
    "WorkloadProfile",
    "get_profile",
    "ValuePool",
    "sample_corpus",
    "MemoryAccess",
    "TraceSet",
    "generate_traces",
]
