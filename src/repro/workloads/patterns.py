"""Cache-line value-pattern generators.

Compression studies consistently find cache contents dominated by a handful
of value families: zero lines, narrow integers stored in wide fields,
pointer arrays sharing a base address, floating-point arrays with clustered
exponents, repeated values, text, and genuinely random data.  Each generator
below produces one 64-byte line of a family from a seeded RNG; benchmark
profiles mix the families with per-benchmark weights to hit realistic
compression ratios (delta/BDI ≈ 1.5–1.6×, SC² ≈ 2.4× on average, as in the
paper's Table 1).
"""

from __future__ import annotations

import random
from typing import Callable, Dict


def zero_line(rng: random.Random, size: int) -> bytes:
    """An all-zero line (bss, freshly-allocated heap, padding)."""
    return b"\x00" * size


def narrow_int32_line(rng: random.Random, size: int) -> bytes:
    """Small signed integers stored in 32-bit fields (counters, indices)."""
    magnitude = rng.choice((1 << 4, 1 << 7, 1 << 10))
    words = []
    for _ in range(size // 4):
        value = rng.randrange(-magnitude, magnitude) & 0xFFFFFFFF
        words.append(value.to_bytes(4, "little"))
    return b"".join(words)


def narrow_int64_line(rng: random.Random, size: int) -> bytes:
    """Small integers in 64-bit fields (longs, sizes, 64-bit counters)."""
    magnitude = rng.choice((1 << 6, 1 << 10))
    words = []
    for _ in range(size // 8):
        value = rng.randrange(0, magnitude)
        words.append(value.to_bytes(8, "little"))
    return b"".join(words)


#: Canonical heap/mmap region bases a process's pointers point into.  A
#: real address space has a handful of live regions; sharing them across
#: lines is what makes pointer data statistically compressible.
_HEAP_BASES = tuple(
    ((0x7F00_0000_0000 + i * 0x0000_4000_0000) & ~0xFFF) for i in range(16)
)


def pointer_line(rng: random.Random, size: int) -> bytes:
    """64-bit pointers into one region: large shared base, small offsets.

    Offsets are object-granular (multiples of 64 from a small live set),
    matching how pointer arrays index allocation pools.
    """
    base = rng.choice(_HEAP_BASES)
    live_offsets = [rng.randrange(0, 32) * 64 for _ in range(8)]
    words = []
    for _ in range(size // 8):
        words.append((base + rng.choice(live_offsets)).to_bytes(8, "little"))
    return b"".join(words)


def float_line(rng: random.Random, size: int) -> bytes:
    """IEEE-754 singles with clustered exponents and quantized mantissas.

    Physics and media arrays hold values computed from bounded inputs:
    exponents cluster in a narrow band and the effective mantissa precision
    is far below 23 bits (the low bits are zero).  Statistical compressors
    exploit the resulting half-word repetition; base-delta schemes cannot
    (adjacent floats differ by large word-level deltas) — which is the
    ratio spread the paper's Table 1 reports between SC² and BDI.
    """
    exponent = rng.randrange(124, 132)
    precision = rng.choice((4, 5, 6))
    words = []
    for _ in range(size // 4):
        sign = rng.getrandbits(1)
        mantissa = rng.getrandbits(precision) << (23 - precision)
        noise = rng.getrandbits(3) << 12  # quantization residue, 8 values
        word = (sign << 31) | (exponent << 23) | mantissa | noise
        words.append(word.to_bytes(4, "little"))
    return b"".join(words)


def repeated_line(rng: random.Random, size: int) -> bytes:
    """A single 32-bit value repeated across the line (memset patterns)."""
    value = rng.choice((0x01010101, 0xFFFFFFFF, rng.getrandbits(32)))
    return value.to_bytes(4, "little") * (size // 4)


def stride_line(rng: random.Random, size: int) -> bytes:
    """An arithmetic sequence in 64-bit fields (index arrays, addresses)."""
    start = rng.randrange(0, 1 << 18)
    step = rng.choice((1, 2, 4, 8, 16))
    words = []
    for i in range(size // 8):
        words.append(((start + i * step) & (1 << 64) - 1).to_bytes(8, "little"))
    return b"".join(words)


_VOCABULARY = (
    b"the ", b"of ", b"and ", b"data ", b"block ", b"node ", b"size ",
    b"in ", b"for ", b"key=", b"val=", b"id:", b"img", b"chunk ", b"hash ",
    b"0x1f ", b"len ", b"tag ", b"buf ", b"end ", b"a ", b"to ", b"is ",
)


def text_line(rng: random.Random, size: int) -> bytes:
    """Natural-ish text from a small vocabulary (dedup/vips string data).

    Real string data repeats tokens heavily (~2-4 bits/char entropy), which
    statistical compression exploits and word-delta schemes do not.
    """
    out = bytearray()
    while len(out) < size:
        out.extend(rng.choice(_VOCABULARY))
    return bytes(out[:size])


def random_line(rng: random.Random, size: int) -> bytes:
    """Incompressible data (encrypted/compressed payloads, hashes)."""
    return rng.getrandbits(8 * size).to_bytes(size, "little")


def sparse_line(rng: random.Random, size: int) -> bytes:
    """Mostly-zero line with a few non-zero words (sparse structures)."""
    data = bytearray(size)
    for _ in range(rng.randrange(1, 4)):
        position = rng.randrange(0, size // 4) * 4
        data[position : position + 4] = rng.getrandbits(32).to_bytes(4, "little")
    return bytes(data)


#: Name -> generator; profile pattern mixes refer to these names.
PATTERN_GENERATORS: Dict[str, Callable[[random.Random, int], bytes]] = {
    "zero": zero_line,
    "narrow32": narrow_int32_line,
    "narrow64": narrow_int64_line,
    "pointer": pointer_line,
    "float": float_line,
    "repeat": repeated_line,
    "stride": stride_line,
    "text": text_line,
    "random": random_line,
    "sparse": sparse_line,
}


def generate_line(pattern: str, rng: random.Random, size: int = 64) -> bytes:
    """Generate one line of the named pattern family."""
    generator = PATTERN_GENERATORS.get(pattern)
    if generator is None:
        raise KeyError(
            f"unknown value pattern {pattern!r}; "
            f"choose from {sorted(PATTERN_GENERATORS)}"
        )
    line = generator(rng, size)
    if len(line) != size:
        raise AssertionError(f"pattern {pattern} produced {len(line)} bytes")
    return line
