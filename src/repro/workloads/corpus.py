"""Deterministic address → cache-line-content mapping (``ValuePool``).

The simulator needs real line payloads (compression operates on bytes, not
ratios).  A :class:`ValuePool` deterministically assigns every line address
a value drawn from the benchmark profile's pattern mix, and evolves it on
writes, so two simulation runs of the same (profile, seed) see bit-identical
data no matter which scheme is being simulated.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.workloads.patterns import generate_line
from repro.workloads.profiles import WorkloadProfile

#: Large odd multiplier for address-seed mixing (splitmix-style).
_MIX = 0x9E3779B97F4A7C15


class ValuePool:
    """Deterministic value store backing a synthetic workload.

    ``line(addr)`` returns the current 64-byte content of a line address;
    ``fresh_write_value(addr)`` returns the next value a store writes there
    (drawn from the same pattern family, so written-back data keeps the
    benchmark's compressibility).
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        line_size: int = 64,
    ):
        self.profile = profile
        self.seed = seed
        self.line_size = line_size
        self._mix = profile.normalized_mix()
        self._versions: Dict[int, int] = {}
        self._current: Dict[int, bytes] = {}

    def _pattern_for(self, addr: int) -> str:
        rng = random.Random((self.seed * 1_000_003) ^ (addr * _MIX))
        pick = rng.random()
        for name, cumulative in self._mix:
            if pick <= cumulative:
                return name
        return self._mix[-1][0]

    def _generate(self, addr: int, version: int) -> bytes:
        pattern = self._pattern_for(addr)
        rng = random.Random(
            ((self.seed + version * 7_919) * 1_000_003) ^ (addr * _MIX) ^ version
        )
        return generate_line(pattern, rng, self.line_size)

    def line(self, addr: int) -> bytes:
        """Current content of line ``addr``."""
        cached = self._current.get(addr)
        if cached is None:
            cached = self._generate(addr, 0)
            self._current[addr] = cached
        return cached

    def fresh_write_value(self, addr: int) -> bytes:
        """Advance the line's version (a store) and return the new value."""
        version = self._versions.get(addr, 0) + 1
        self._versions[addr] = version
        value = self._generate(addr, version)
        self._current[addr] = value
        return value

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Mutable value-evolution state (write versions + current lines).

        The profile/seed/mix are construction-time constants; only the
        store-driven evolution needs capturing for a bit-identical resume.
        """
        return {
            "version": 1,
            "versions": dict(self._versions),
            "current": dict(self._current),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported ValuePool state version {state.get('version')!r}"
            )
        self._versions = dict(state["versions"])
        self._current = dict(state["current"])

    def sample(self, n: int, seed: int = 0) -> List[bytes]:
        """``n`` representative lines (for SC²/FVC training, Table 1)."""
        rng = random.Random((self.seed, seed, n).__hash__())
        addresses = [
            rng.randrange(0, max(16, self.profile.working_set_lines))
            for _ in range(n)
        ]
        return [self._generate(addr, 0) for addr in addresses]


def sample_corpus(
    profiles, lines_per_profile: int = 200, seed: int = 1
) -> List[bytes]:
    """A mixed corpus across profiles (used by Table 1 and SC² training)."""
    corpus: List[bytes] = []
    for profile in profiles:
        pool = ValuePool(profile, seed=seed)
        corpus.extend(pool.sample(lines_per_profile))
    return corpus
