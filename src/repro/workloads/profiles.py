"""PARSEC-2.1 benchmark profiles (the gem5+PARSEC substitution).

Each profile captures, per benchmark, the workload properties that drive the
DISCO results: value-pattern mix (compressibility), total working-set size
(LLC pressure), read/write mix, sharing degree (coherence traffic), temporal
and spatial locality, and memory intensity.  The numbers are synthesized
from the published PARSEC characterization literature (Bienia et al.,
PACT'08) at the level of "canneal has a huge pointer-chasing working set,
swaptions is cache-resident float code" — i.e. the level that matters for
reproducing the *shape* of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic stand-in for one PARSEC benchmark.

    Attributes
    ----------
    name:
        Benchmark name (PARSEC-2.1 application).
    pattern_mix:
        ``pattern name -> weight`` over :data:`repro.workloads.patterns.
        PATTERN_GENERATORS`; controls line compressibility.
    working_set_lines:
        Total distinct cache lines touched (across all cores).  Experiments
        size the (scaled) LLC against this to reproduce capacity pressure.
    shared_fraction:
        Probability an access targets the shared region (drives coherence
        and NUCA bank spreading).
    read_fraction:
        Fraction of accesses that are loads.
    locality:
        Probability of re-referencing a recently used line (L1 hit driver).
    sequential_run:
        Mean run length of consecutive-line accesses (spatial locality).
    mean_gap:
        Mean compute cycles between successive memory accesses of one core
        (memory intensity; lower = more NoC pressure).
    """

    name: str
    pattern_mix: Dict[str, float]
    working_set_lines: int
    shared_fraction: float
    read_fraction: float
    locality: float
    sequential_run: int
    mean_gap: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.pattern_mix:
            raise ValueError("pattern_mix must not be empty")
        total = sum(self.pattern_mix.values())
        if total <= 0:
            raise ValueError("pattern_mix weights must sum to > 0")
        for probability in (
            self.shared_fraction,
            self.read_fraction,
            self.locality,
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError("profile probabilities must be in [0, 1]")
        if self.working_set_lines < 16:
            raise ValueError("working_set_lines too small to be meaningful")
        if self.sequential_run < 1 or self.mean_gap <= 0:
            raise ValueError("sequential_run >= 1 and mean_gap > 0 required")

    def normalized_mix(self) -> List[Tuple[str, float]]:
        """Pattern mix as cumulative (name, cumulative weight) pairs."""
        total = sum(self.pattern_mix.values())
        cumulative = 0.0
        out = []
        for name in sorted(self.pattern_mix):
            cumulative += self.pattern_mix[name] / total
            out.append((name, cumulative))
        return out


def _profile(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


#: The 13 PARSEC-2.1 applications, as synthetic profiles.
PARSEC_BENCHMARKS: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        _profile(
            name="blackscholes",
            description="option pricing; small float working set, read-heavy",
            pattern_mix={"float": 0.45, "narrow32": 0.2, "zero": 0.25, "repeat": 0.1},
            working_set_lines=3000,
            shared_fraction=0.10,
            read_fraction=0.80,
            locality=0.86,
            sequential_run=8,
            mean_gap=18.0,
        ),
        _profile(
            name="bodytrack",
            description="computer vision; mixed float/int, moderate sharing",
            pattern_mix={"float": 0.3, "narrow32": 0.25, "zero": 0.2,
                         "pointer": 0.1, "random": 0.15},
            working_set_lines=5500,
            shared_fraction=0.25,
            read_fraction=0.72,
            locality=0.8,
            sequential_run=6,
            mean_gap=16.0,
        ),
        _profile(
            name="canneal",
            description="cache-hostile pointer chasing over a huge netlist",
            pattern_mix={"pointer": 0.4, "narrow64": 0.15, "random": 0.25,
                         "zero": 0.15, "sparse": 0.05},
            working_set_lines=12000,
            shared_fraction=0.35,
            read_fraction=0.70,
            locality=0.62,
            sequential_run=1,
            mean_gap=14.0,
        ),
        _profile(
            name="dedup",
            description="dedup pipeline; text + hash data, write-heavy",
            pattern_mix={"text": 0.3, "random": 0.3, "zero": 0.2,
                         "narrow32": 0.15, "repeat": 0.05},
            working_set_lines=8000,
            shared_fraction=0.30,
            read_fraction=0.58,
            locality=0.76,
            sequential_run=10,
            mean_gap=15.0,
        ),
        _profile(
            name="facesim",
            description="physics simulation; large float arrays",
            pattern_mix={"float": 0.5, "zero": 0.2, "narrow32": 0.1,
                         "sparse": 0.1, "random": 0.1},
            working_set_lines=9000,
            shared_fraction=0.15,
            read_fraction=0.68,
            locality=0.78,
            sequential_run=12,
            mean_gap=16.0,
        ),
        _profile(
            name="ferret",
            description="content similarity search; mixed media and indices",
            pattern_mix={"float": 0.25, "text": 0.2, "pointer": 0.2,
                         "narrow32": 0.15, "random": 0.2},
            working_set_lines=7500,
            shared_fraction=0.30,
            read_fraction=0.74,
            locality=0.78,
            sequential_run=5,
            mean_gap=16.0,
        ),
        _profile(
            name="fluidanimate",
            description="SPH fluid dynamics; floats with sparse cell lists",
            pattern_mix={"float": 0.45, "sparse": 0.15, "zero": 0.2,
                         "narrow32": 0.1, "pointer": 0.1},
            working_set_lines=7000,
            shared_fraction=0.20,
            read_fraction=0.65,
            locality=0.8,
            sequential_run=7,
            mean_gap=15.0,
        ),
        _profile(
            name="freqmine",
            description="frequent itemset mining; integer FP-trees",
            pattern_mix={"narrow32": 0.35, "pointer": 0.25, "zero": 0.2,
                         "narrow64": 0.1, "random": 0.1},
            working_set_lines=8500,
            shared_fraction=0.20,
            read_fraction=0.76,
            locality=0.75,
            sequential_run=4,
            mean_gap=15.0,
        ),
        _profile(
            name="raytrace",
            description="real-time raytracing; BVH pointers + float geometry",
            pattern_mix={"float": 0.35, "pointer": 0.3, "zero": 0.15,
                         "narrow32": 0.1, "random": 0.1},
            working_set_lines=8000,
            shared_fraction=0.25,
            read_fraction=0.82,
            locality=0.78,
            sequential_run=4,
            mean_gap=15.0,
        ),
        _profile(
            name="streamcluster",
            description="online clustering; streaming float points",
            pattern_mix={"float": 0.55, "zero": 0.15, "narrow32": 0.15,
                         "repeat": 0.05, "random": 0.1},
            working_set_lines=11000,
            shared_fraction=0.30,
            read_fraction=0.78,
            locality=0.6,
            sequential_run=16,
            mean_gap=14.0,
        ),
        _profile(
            name="swaptions",
            description="HJM swaption pricing; tiny cache-resident float set",
            pattern_mix={"float": 0.5, "narrow32": 0.2, "zero": 0.25,
                         "repeat": 0.05},
            working_set_lines=1500,
            shared_fraction=0.05,
            read_fraction=0.80,
            locality=0.9,
            sequential_run=6,
            mean_gap=20.0,
        ),
        _profile(
            name="vips",
            description="image transforms; media integers and buffers",
            pattern_mix={"narrow32": 0.3, "float": 0.2, "zero": 0.2,
                         "repeat": 0.1, "random": 0.2},
            working_set_lines=7500,
            shared_fraction=0.15,
            read_fraction=0.66,
            locality=0.76,
            sequential_run=14,
            mean_gap=15.0,
        ),
        _profile(
            name="x264",
            description="H.264 encoding; motion vectors + residual blocks",
            pattern_mix={"narrow32": 0.35, "random": 0.25, "zero": 0.2,
                         "repeat": 0.1, "sparse": 0.1},
            working_set_lines=7000,
            shared_fraction=0.20,
            read_fraction=0.62,
            locality=0.78,
            sequential_run=10,
            mean_gap=14.0,
        ),
    )
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by PARSEC application name."""
    profile = PARSEC_BENCHMARKS.get(name)
    if profile is None:
        raise KeyError(
            f"unknown benchmark {name!r}; "
            f"choose from {sorted(PARSEC_BENCHMARKS)}"
        )
    return profile
