"""Coordinated packet scheduling (paper §3.3-B).

Two rules:

1. read requests and responses are on the critical path and keep the
   normal (high) priority;
2. *compressible but still uncompressed* packets are demoted, so they lose
   contention more often, accumulate idle time, and get compressed with
   higher probability — while genuinely critical traffic takes the
   bandwidth they give up.

Rule 2 is the "coordinated" half of DISCO: the scheduler manufactures the
very idle time the arbitrator then exploits.
"""

from __future__ import annotations

from repro.noc.flit import Packet, PacketType

#: Normal priority for critical-path traffic.
PRIORITY_NORMAL = 1
#: Demoted priority for compressible-but-uncompressed packets.
PRIORITY_DEMOTED = 0


def baseline_priority(packet: Packet) -> int:
    """Conventional scheduling: all packets equal (round-robin breaks ties)."""
    return PRIORITY_NORMAL


def disco_priority(packet: Packet) -> int:
    """The §3.3-B policy (rule 2 applies to response packets only)."""
    if (
        packet.ptype is PacketType.RESPONSE
        and packet.compressible
        and not packet.is_compressed
    ):
        return PRIORITY_DEMOTED
    return PRIORITY_NORMAL
