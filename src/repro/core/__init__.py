"""DISCO — the paper's contribution: in-network distributed compression.

The pieces map one-to-one onto §3 of the paper:

- :class:`repro.core.config.DiscoConfig` — thresholds/coefficients of the
  confidence mechanism (Eq. 1/2) and engine latencies;
- :class:`repro.core.engine.DiscoCompressorEngine` — the per-router
  compression engine with shadow packets and non-blocking abort
  (§3.2 step-3), including *separate compression* of partially-arrived
  wormhole packets (§3.3-A);
- :class:`repro.core.arbitrator.DiscoArbitrator` — candidate filtering and
  confidence counting (§3.2 steps 1-2);
- :class:`repro.core.disco_router.DiscoRouter` — the §3.1 router wiring the
  engine and arbitrator into the baseline 3-stage pipeline;
- :mod:`repro.core.scheduling` — the §3.3-B packet-priority policy.
"""

from repro.core.config import DiscoConfig
from repro.core.engine import DiscoCompressorEngine, EngineJob, JOB_COMPRESS, JOB_DECOMPRESS
from repro.core.arbitrator import DiscoArbitrator
from repro.core.disco_router import DiscoRouter, make_disco_router_factory
from repro.core.scheduling import disco_priority, baseline_priority

__all__ = [
    "DiscoConfig",
    "DiscoCompressorEngine",
    "EngineJob",
    "JOB_COMPRESS",
    "JOB_DECOMPRESS",
    "DiscoArbitrator",
    "DiscoRouter",
    "make_disco_router_factory",
    "disco_priority",
    "baseline_priority",
]
