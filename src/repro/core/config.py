"""DISCO configuration: confidence coefficients, thresholds, engine setup.

The paper trains γ (Eq. 1), α and β (Eq. 2) plus the two thresholds CCth
and CDth offline on workload traces and then fixes them ("these two
parameters are assumed deterministic in NoC for simplicity").  The defaults
here were tuned the same way on the synthetic PARSEC-like traces; the
calibration sweep lives in ``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compression.registry import get_timing


@dataclass(frozen=True)
class DiscoConfig:
    """Parameters of the DISCO arbitrator and compressor engine.

    Attributes
    ----------
    algorithm:
        Registry name of the compression algorithm plugged into the engine
        (DISCO is algorithm-agnostic, §3.2).
    compression_cycles / decompression_cycles:
        Engine busy time; ``None`` takes the algorithm's Table 1 timing.
    cc_threshold / gamma:
        Eq. (1): compress packet *i* when
        ``credit_in[RC(i)] + gamma * credit_out[VA(i)] > cc_threshold``.
    cd_threshold / alpha / beta:
        Eq. (2): decompress when ``credit_in[RC(i)] + alpha *
        credit_out[VA(i)] - beta * RC_Hop(i) > cd_threshold``.
    separate_compression:
        §3.3-A: allow compressing a partially-arrived wormhole packet with
        persistent base registers (delta engines only); whole-packet
        compression otherwise.
    non_blocking:
        §3.2 step-3: keep a schedulable shadow packet in the VC and abort
        the engine if the switch grants it mid-(de)compression.
    engines_per_router:
        Concurrent engine jobs per router (the paper evaluates one).
    compress_at_fill:
        Compress blocks that arrive uncompressed at an LLC bank / must be
        decompressed for the memory controller using the local engine
        off the critical path (fills and writebacks are not in the
        requesting core's access path; energy is still charged).
    """

    algorithm: str = "delta"
    compression_cycles: Optional[int] = None
    decompression_cycles: Optional[int] = None
    cc_threshold: float = 2.0
    gamma: float = 0.5
    cd_threshold: float = 1.0
    alpha: float = 0.5
    beta: float = 1.0
    separate_compression: bool = True
    non_blocking: bool = True
    engines_per_router: int = 1
    compress_at_fill: bool = True
    #: The paper fixes CCth/CDth offline "for simplicity" and notes their
    #: best values depend on the congestion condition.  This optional
    #: extension implements the congestion-aware variant the paper defers:
    #: each arbitrator keeps an EMA of local congestion and shifts both
    #: thresholds so compression stays selective when the router is quiet
    #: and eager when it is backed up.
    adaptive_thresholds: bool = False
    #: EMA smoothing factor for the congestion estimate (0 < a <= 1).
    adaptation_rate: float = 0.05
    #: Threshold shift per unit of (EMA congestion - nominal congestion).
    adaptation_gain: float = 0.5

    def __post_init__(self) -> None:
        if self.engines_per_router < 1:
            raise ValueError("need at least one engine per router")
        for name in ("gamma", "alpha", "beta"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 < self.adaptation_rate <= 1.0:
            raise ValueError("adaptation_rate must be in (0, 1]")

    def resolved_compression_cycles(self) -> int:
        if self.compression_cycles is not None:
            return self.compression_cycles
        return get_timing(self.algorithm).compression_cycles

    def resolved_decompression_cycles(self) -> int:
        if self.decompression_cycles is not None:
            return self.decompression_cycles
        return get_timing(self.algorithm).decompression_cycles
