"""The DISCO router (§3.1, Fig. 2): baseline pipeline + engine + arbitrator.

Two components are added to the conventional 3-stage router: the *DISCO
compressor* attached to the input buffers, and the *DISCO arbitrator*
cooperating with RC/VA/SA.  The arbitrator sees the allocation losers the
moment they lose (the hook runs inside the SA stage) plus the packets still
waiting for a downstream VC, computes their confidence and, when it clears
the threshold, hands the packet to the engine while the shadow copy stays
schedulable in the VC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.compression.base import CompressionAlgorithm
from repro.compression.registry import get_algorithm
from repro.core.arbitrator import DiscoArbitrator
from repro.core.config import DiscoConfig
from repro.core.engine import DiscoCompressorEngine
from repro.noc.config import NocConfig
from repro.noc.router import VC_VA, InputVC, Router

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network


class DiscoRouter(Router):
    """A mesh router with an in-network (de)compression engine."""

    def __init__(
        self,
        node: int,
        config: NocConfig,
        network: "Network",
        disco: DiscoConfig,
        algorithm: CompressionAlgorithm,
    ):
        super().__init__(node, config, network)
        self.disco = disco
        self.engine = DiscoCompressorEngine(self, disco, algorithm)
        self.arbitrator = DiscoArbitrator(self, disco, self.engine)

    def tick(self, cycle: Optional[int] = None) -> None:
        super().tick(cycle)
        # Packets stuck in VC allocation are idle candidates too: they have
        # a routed direction but no downstream VC (step-1 counts both VA
        # and SA losers).
        va_blocked = [
            vc
            for vc in self._bound
            if vc.state == VC_VA and vc.wait_cycles > 0
        ]
        if va_blocked:
            self.arbitrator.consider(va_blocked, self.network.cycle)
        self.engine.tick(self.network.cycle)

    def has_work(self) -> bool:
        return super().has_work() or self.engine.busy()

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["engine"] = self.engine.state_dict()
        state["arbitrator"] = self.arbitrator.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        # Base restore clears every VC's engine_job; the engine restore
        # re-links its live jobs afterwards.
        super().load_state(state)
        self.engine.load_state(state["engine"])
        self.arbitrator.load_state(state["arbitrator"])

    # -- DISCO hook implementations ------------------------------------------
    def _post_switch_allocation(self, losers: List[InputVC]) -> None:
        if losers:
            self.arbitrator.consider(losers, self.network.cycle)

    def _can_send(self, vc: InputVC) -> bool:
        job = vc.engine_job
        if job is not None:
            # A streaming job whose flits entered the compressor is
            # committed; without non-blocking support every job locks its
            # shadow (the shadow-invalid bit of §3.2) until completion.
            if job.committed or not self.disco.non_blocking:
                return False
        return super()._can_send(vc)

    def _on_first_flit_sent(self, vc: InputVC) -> None:
        if vc.engine_job is not None:
            self.engine.abort(vc)


def make_disco_router_factory(
    disco: DiscoConfig,
    algorithm: Optional[CompressionAlgorithm] = None,
):
    """Router factory for :class:`repro.noc.network.Network`.

    One (cached) algorithm instance is shared by all routers — results are
    deterministic and the shared memo keeps simulation fast.
    """
    shared = algorithm or get_algorithm(disco.algorithm)

    def factory(node: int, config: NocConfig, network: "Network") -> DiscoRouter:
        return DiscoRouter(node, config, network, disco, shared)

    return factory
