"""The DISCO arbitrator: candidate filtering + confidence counting (§3.2).

Step-1 hands the arbitrator this cycle's allocation losers — packets that
wanted an output port or a downstream VC and did not get one.  Step-2
computes a *confidence* per candidate from the same credit signals the flow
control already maintains:

- ``credit_in{RC(p)}``: occupancy of the downstream input port the packet
  is routed toward (remote pressure — the paper reuses the credit_in wires
  from the adjacent router);
- ``credit_out{VA(p)}``: flits buffered locally that contend for the same
  output port (local pressure — reusing the local VA's credit_out);
- ``RC_Hop(p)``: remaining hop distance, used only for decompression to
  avoid *early* decompression that would re-inflate traffic (Eq. 2).

Both signals are expressed as occupancies so that higher confidence means
more congestion, i.e. a longer expected idle time to hide the engine
latency in.  A candidate is dispatched only when its confidence clears the
per-direction threshold (CCth for compression, CDth for decompression).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.core.config import DiscoConfig
from repro.core.engine import (
    JOB_COMPRESS,
    JOB_DECOMPRESS,
    DiscoCompressorEngine,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.router import InputVC, Router


class DiscoArbitrator:
    """Selects which idling packet (if any) enters the compressor."""

    def __init__(
        self,
        router: "Router",
        config: DiscoConfig,
        engine: DiscoCompressorEngine,
    ):
        self.router = router
        self.config = config
        self.engine = engine
        self.considered = 0
        self.dispatched = 0
        # Congestion EMA for the adaptive-threshold extension.  The
        # nominal point is the fixed thresholds' design congestion; with
        # adaptation off the shift is always zero.
        self._congestion_ema = 0.0
        self._nominal_congestion = max(config.cc_threshold, 0.0)

    # -- step 1: the packet filter ------------------------------------------
    def _mode_for(self, vc: "InputVC") -> Optional[str]:
        packet = vc.packet
        if packet is None or not packet.carries_data:
            return None
        if packet.poisoned:
            # An engine fault already hit this packet; it stays on the
            # uncompressed / NI-decompression fallback path.
            return None
        if vc.out_port < 0:
            return None  # RC has not resolved a direction yet
        if packet.is_compressed and packet.decompress_at_dst:
            return JOB_DECOMPRESS
        if not packet.is_compressed and packet.compressible:
            return JOB_COMPRESS
        return None

    # -- step 2: confidence counting ------------------------------------------
    def confidence(self, vc: "InputVC", mode: str) -> float:
        """Eq. (1) / Eq. (2) of the paper."""
        remote = self.router.downstream_occupancy(vc.out_port)
        local = self.router.local_contention(vc.out_port, vc)
        if mode == JOB_COMPRESS:
            return remote + self.config.gamma * local
        packet = vc.packet
        assert packet is not None
        hops = self.router.topology.hop_distance(self.router.node, packet.dst)
        return remote + self.config.alpha * local - self.config.beta * hops

    def _threshold(self, mode: str) -> float:
        base = (
            self.config.cc_threshold
            if mode == JOB_COMPRESS
            else self.config.cd_threshold
        )
        if not self.config.adaptive_thresholds:
            return base
        # Congestion-aware variant (the extension §3.2 defers): a busy
        # router lowers its bar — waits will be long, so committing the
        # engine is safe; a quiet router raises it.
        shift = self.config.adaptation_gain * (
            self._congestion_ema - self._nominal_congestion
        )
        return base - shift

    def _observe_congestion(self, sample: float) -> None:
        rate = self.config.adaptation_rate
        self._congestion_ema += rate * (sample - self._congestion_ema)

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "version": 1,
            "considered": self.considered,
            "dispatched": self.dispatched,
            "congestion_ema": self._congestion_ema,
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported DiscoArbitrator state version "
                f"{state.get('version')!r}"
            )
        self.considered = state["considered"]
        self.dispatched = state["dispatched"]
        self._congestion_ema = state["congestion_ema"]

    # -- steps 1+2+3 glue --------------------------------------------------------
    def consider(self, candidates: Iterable["InputVC"], cycle: int) -> int:
        """Evaluate this cycle's idle candidates; dispatch the best.

        Returns the number of jobs dispatched (bounded by engine capacity).
        """
        if not self.engine.has_capacity():
            return 0
        scored: List[Tuple[float, int, "InputVC", str]] = []
        for vc in candidates:
            mode = self._mode_for(vc)
            if mode is None:
                continue
            if not self.engine.can_accept(vc, mode):
                continue
            self.considered += 1
            conf = self.confidence(vc, mode)
            if self.config.adaptive_thresholds and mode == JOB_COMPRESS:
                self._observe_congestion(conf)
            if conf > self._threshold(mode):
                # Tie-break deterministically by (port, vc index).
                scored.append((conf, -(vc.port * 8 + vc.vc_index), vc, mode))
        dispatched = 0
        scored.sort(reverse=True)
        for _, _, vc, mode in scored:
            if not self.engine.has_capacity():
                break
            if vc.engine_job is not None:
                continue
            self.engine.start(vc, mode, cycle)
            dispatched += 1
            self.dispatched += 1
        return dispatched
