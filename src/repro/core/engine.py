"""The DISCO compressor engine (paper §3.2 step-3, Fig. 4).

Two operating modes, matching §3.3-A:

**Whole-packet jobs** (decompression always; compression when the packet
fits entirely in the VC, e.g. under virtual cut-through / store-and-forward
or for already-small packets).  The engine works on a *copy*; the original
stays in the buffer as a **shadow packet** (SP), still schedulable by the
switch allocator.  On a confidence mis-prediction — the contended port
frees up early — the shadow transmits and the job is invalidated
(**non-blocking** operation).  Only on completion are the VC's flits
replaced and the saved buffer slots released.

**Separate (streaming) compression** (wormhole): a 9-flit packet can never
fully reside in an 8-flit VC, so the engine consumes flits as they arrive,
keeping the bases in its base registers between partial feeds and emitting
merged compressed flits without zero bubbles
(:class:`repro.compression.delta.SeparateDeltaSession`).  Once flits have
physically entered the compressor the packet is committed (it can no longer
be scheduled until the encoding completes) — the hasty-decision risk that
the §3.2 confidence mechanism exists to avoid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.compression.base import CompressionAlgorithm
from repro.compression.delta import SeparateDeltaSession
from repro.core.config import DiscoConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.router import InputVC, Router

JOB_COMPRESS = "compress"
JOB_DECOMPRESS = "decompress"

#: Streaming throughput of the separate-compression datapath (Fig. 4a's
#: unit takes four flits per step).
_STREAM_FLITS_PER_CYCLE = 4


class EngineJob:
    """One in-flight (de)compression inside a DISCO engine."""

    __slots__ = (
        "vc",
        "packet",
        "mode",
        "started",
        "ready",
        "separate",
        "valid",
        "session",
        "consumed",
        "emitted",
        "fault_checked",
    )

    def __init__(
        self, vc: "InputVC", mode: str, started: int, ready: int, separate: bool
    ):
        self.vc = vc
        self.packet = vc.packet
        self.mode = mode
        self.started = started
        self.ready = ready
        self.separate = separate
        self.valid = True
        self.session: Optional[SeparateDeltaSession] = None
        self.consumed = 0  # payload flits taken into the compressor
        self.emitted = 0  # compressed flits written back to the buffer
        self.fault_checked = False  # one fault draw per job (repro.faults)

    @property
    def committed(self) -> bool:
        """True once flits physically entered the streaming compressor."""
        return self.separate and self.consumed > 0


class DiscoCompressorEngine:
    """Per-router compression engine with shadow-packet semantics."""

    def __init__(
        self,
        router: "Router",
        config: DiscoConfig,
        algorithm: CompressionAlgorithm,
    ):
        self.router = router
        self.config = config
        self.algorithm = algorithm
        self.comp_cycles = config.resolved_compression_cycles()
        self.decomp_cycles = config.resolved_decompression_cycles()
        self.jobs: List[EngineJob] = []
        self._supports_separate = (
            config.separate_compression and algorithm.name == "delta"
        )

    # -- capacity ------------------------------------------------------------
    def has_capacity(self) -> bool:
        return len(self.jobs) < self.config.engines_per_router

    def busy(self) -> bool:
        return bool(self.jobs)

    # -- job admission ---------------------------------------------------------
    def can_accept(self, vc: "InputVC", mode: str) -> bool:
        """Structural admission test (the arbitrator filters semantics)."""
        packet = vc.packet
        if packet is None or vc.engine_job is not None:
            return False
        if vc.flits_sent != 0:
            return False  # the head already left; too late (§3.2 step-2)
        if not self.has_capacity():
            return False
        whole = vc.flits_received >= packet.size_flits
        if mode == JOB_COMPRESS:
            if packet.is_compressed or not packet.compressible:
                return False
            if packet.line is None:
                return False
            if whole:
                return True
            # Streaming path needs at least one payload flit buffered.
            return self._supports_separate and vc.flits_received >= 2
        if mode == JOB_DECOMPRESS:
            return packet.is_compressed and whole
        raise ValueError(f"unknown engine mode {mode!r}")

    def start(self, vc: "InputVC", mode: str, cycle: int) -> EngineJob:
        """Commit a packet to the engine (shadow stays in the VC)."""
        if not self.can_accept(vc, mode):
            raise RuntimeError("engine cannot accept this job")
        packet = vc.packet
        assert packet is not None
        separate = (
            mode == JOB_COMPRESS and vc.flits_received < packet.size_flits
        )
        latency = self.comp_cycles if mode == JOB_COMPRESS else self.decomp_cycles
        job = EngineJob(vc, mode, cycle, cycle + latency, separate)
        if separate:
            job.session = SeparateDeltaSession(
                chunk_width=packet.flit_bytes, delta_width=1
            )
        self.jobs.append(job)
        vc.engine_job = job
        tracer = self.router.network.tracer
        if tracer is not None:
            tracer.on_engine(cycle, packet, self.router.node, mode, "start")
        return job

    def abort(self, vc: "InputVC") -> None:
        """Non-blocking escape: the shadow packet got scheduled (§3.2)."""
        job = vc.engine_job
        if job is None:
            return
        if job.committed:  # pragma: no cover - scheduler lock prevents this
            raise RuntimeError("cannot abort a committed streaming job")
        job.valid = False
        vc.engine_job = None
        self.router.network.stats.aborted_jobs += 1
        tracer = self.router.network.tracer
        if tracer is not None and job.packet is not None:
            tracer.on_engine(
                self.router.network.cycle,
                job.packet,
                self.router.node,
                job.mode,
                "abort",
            )

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """In-flight jobs, VCs path-encoded relative to this router.

        Aborted-but-unswept jobs (``valid == False``) are captured too so a
        restored ``tick`` drops them exactly like the original would have.
        """
        jobs = []
        for job in self.jobs:
            jobs.append(
                {
                    "vc": (job.vc.port, job.vc.vc_index),
                    "packet": job.packet,
                    "mode": job.mode,
                    "started": job.started,
                    "ready": job.ready,
                    "separate": job.separate,
                    "valid": job.valid,
                    "session": job.session,
                    "consumed": job.consumed,
                    "emitted": job.emitted,
                    "fault_checked": job.fault_checked,
                    "linked": job.vc.engine_job is job,
                }
            )
        return {"version": 1, "jobs": jobs}

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported DiscoCompressorEngine state version "
                f"{state.get('version')!r}"
            )
        self.jobs = []
        for saved in state["jobs"]:
            port, vc_index = saved["vc"]
            vc = self.router.inputs[port][vc_index]
            job = EngineJob.__new__(EngineJob)
            job.vc = vc
            job.packet = saved["packet"]
            job.mode = saved["mode"]
            job.started = saved["started"]
            job.ready = saved["ready"]
            job.separate = saved["separate"]
            job.valid = saved["valid"]
            job.session = saved["session"]
            job.consumed = saved["consumed"]
            job.emitted = saved["emitted"]
            job.fault_checked = saved["fault_checked"]
            self.jobs.append(job)
            if saved["linked"]:
                vc.engine_job = job

    # -- per-cycle progress -------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if not self.jobs:
            return
        still_running: List[EngineJob] = []
        for job in self.jobs:
            if not job.valid:
                continue  # aborted; drop silently
            if self._advance(job, cycle):
                continue
            still_running.append(job)
        self.jobs = still_running

    def _advance(self, job: EngineJob, cycle: int) -> bool:
        """Progress one job; returns True when it finished."""
        vc = job.vc
        packet = job.packet
        if vc.packet is not packet:  # pragma: no cover - defensive
            raise RuntimeError("engine job outlived its VC assignment")
        if cycle < job.ready:
            return False
        faults = self.router.network.faults
        if faults is not None and not job.fault_checked:
            job.fault_checked = True
            action = faults.engine_action(cycle, self.router.node, job)
            if action == "stall":
                # The engine sits idle for extra cycles; the shadow packet
                # stays schedulable, so the stall is absorbed, not fatal.
                job.ready = cycle + faults.plan.stall_cycles
                return False
            if action == "bitflip":
                self._complete_degraded(job)
                vc.engine_job = None
                self._trace_engine(job, cycle, "degraded")
                return True
        if job.separate:
            done = self._advance_streaming(job)
            if done:
                self._trace_engine(job, cycle, "end")
            return done
        if vc.flits_received < packet.size_flits:  # pragma: no cover
            raise RuntimeError("whole-packet job started on partial packet")
        if job.mode == JOB_COMPRESS:
            self._complete_whole_compression(job)
        else:
            self._complete_decompression(job)
        vc.engine_job = None
        self._trace_engine(job, cycle, "end")
        return True

    def _trace_engine(self, job: EngineJob, cycle: int, what: str) -> None:
        """Lifecycle hook: job outcome (telemetry tracer, when attached)."""
        tracer = self.router.network.tracer
        if tracer is not None and job.packet is not None:
            tracer.on_engine(
                cycle, job.packet, self.router.node, job.mode, what
            )

    # -- streaming (separate) compression ------------------------------------
    def _advance_streaming(self, job: EngineJob) -> bool:
        vc = job.vc
        packet = job.packet
        session = job.session
        assert session is not None and packet.line is not None
        payload_flits = packet.size_flits - 1
        payload_received = max(0, vc.flits_received - 1)
        take = min(_STREAM_FLITS_PER_CYCLE, payload_received - job.consumed)
        if take > 0:
            width = packet.flit_bytes
            start = job.consumed * width
            session.feed(packet.line[start : start + take * width])
            job.consumed += take
            job.emitted = (session.size_bits + 8 * width - 1) // (8 * width)
            # Consumed flits live in the engine's staging registers (the
            # input flit registers of Fig. 4a), so the VC buffer drains as
            # the engine eats — upstream flits can always keep arriving,
            # which makes streaming compression deadlock-free.  Only the
            # head flit stays in the buffer.
            vc.flits_present = 1 + (payload_received - job.consumed)
        if job.consumed < payload_flits:
            return False
        self._complete_streaming(job)
        vc.engine_job = None
        return True

    def _complete_streaming(self, job: EngineJob) -> None:
        vc = job.vc
        packet = job.packet
        stats = self.router.network.stats
        assert job.session is not None
        result = job.session.result()
        if not result.compressible:
            packet.compressible = False
            vc.flits_present = packet.size_flits
            vc.flits_received = packet.size_flits
            stats.incompressible += 1
            return
        before = packet.size_flits
        packet.apply_compression(result)
        packet.compressed_at_hop = packet.hops_traversed
        vc.flits_present = packet.size_flits
        vc.flits_received = packet.size_flits
        stats.compressions += 1
        stats.separate_compressions += 1
        stats.flits_saved += before - packet.size_flits

    # -- whole-packet completion ----------------------------------------------
    def _complete_whole_compression(self, job: EngineJob) -> None:
        packet = job.packet
        stats = self.router.network.stats
        assert packet.line is not None
        result = self.algorithm.compress(packet.line)
        if not result.compressible:
            packet.compressible = False
            stats.incompressible += 1
            return
        saved = packet.apply_compression(result)
        packet.compressed_at_hop = packet.hops_traversed
        vc = job.vc
        vc.flits_present -= saved
        vc.flits_received = packet.size_flits
        if vc.flits_present != packet.size_flits:  # pragma: no cover
            raise RuntimeError("compression bookkeeping out of sync")
        stats.compressions += 1
        stats.flits_saved += saved

    def _complete_degraded(self, job: EngineJob) -> None:
        """Graceful degradation after an engine bit-flip fault (§ fault
        model): the engine output is untrusted and discarded, the packet is
        poisoned so the arbitrator never re-dispatches it, and the line
        travels on the fallback path — uncompressed for a compression job,
        NI-side residual decompression for a decompression job.  No flits
        were consumed (the fault strikes at the ready boundary), so buffer
        bookkeeping is untouched."""
        packet = job.packet
        packet.poisoned = True
        packet.compressible = False
        degraded = self.router.network.degraded
        degraded.poisoned_packets += 1
        degraded.degraded_transmissions += 1

    def _complete_decompression(self, job: EngineJob) -> None:
        packet = job.packet
        stats = self.router.network.stats
        added = packet.apply_decompression()
        # A deliberately decompressed packet is about to be consumed at its
        # destination; re-compressing it would ping-pong with Eq. (2).
        packet.compressible = False
        packet.decompressed_at_hop = packet.hops_traversed
        vc = job.vc
        # The inflated flits materialize in the engine's staging registers
        # and stream into the buffer; occupancy may transiently exceed the
        # VC depth (free_slots clamps at zero, so no credit is leaked).
        vc.flits_present += added
        vc.flits_received = packet.size_flits
        stats.decompressions += 1
        stats.flits_restored += added
