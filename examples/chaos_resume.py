#!/usr/bin/env python3
"""Chaos drill: SIGKILL a running campaign, resume it, prove nothing broke.

A reduced fig5-style campaign (five schemes over one quick workload) runs
in a child process with periodic checkpointing on.  The driver SIGKILLs
the child at a random point (seeded, so a failing drill replays), then
relaunches it with ``REPRO_RESUME=1`` and asserts two things:

1. **Byte identity** — the resumed campaign's per-spec digests equal an
   uninterrupted baseline campaign's, byte for byte; and
2. **Zero recomputation** — no spec the journal already recorded as
   ``done`` at kill time is simulated again on resume (the resumed child
   logs every actual simulation to ``REPRO_SIM_LOG``; that log must be
   disjoint from the pre-kill done set).

Run:  python examples/chaos_resume.py [n_seeds]
"""

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SCHEMES = ("baseline", "cc", "cnc", "disco", "ideal")

#: The campaign child.  Digests mirror the golden-mesh test's
#: ``result_digest`` so identity here means identity there.
_CHILD = """\
import hashlib, json, os
from repro.experiments.runner import RunSpec, run_specs

accesses = int(os.environ.get("CHAOS_ACCESSES", "300"))
workloads = os.environ.get("CHAOS_WORKLOADS", "blackscholes").split(",")
specs = [RunSpec(scheme=s, workload=w, accesses_per_core=accesses)
         for s in %r for w in workloads]
out = run_specs(specs, jobs=1)
for spec in specs:
    result = out[spec]
    payload = {
        "full": sorted(result.snapshot_full.flat().items()),
        "measured": sorted(result.snapshot_measured.flat().items()),
        "cycles": result.cycles,
        "avg_miss_latency": result.avg_miss_latency,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    print(f"{spec.scheme}/{spec.workload}:{digest}", flush=True)
""" % (SCHEMES,)


def _child_env(cache_dir, accesses, workloads, **extra):
    env = dict(
        os.environ,
        REPRO_CACHE_DIR=str(cache_dir),
        CHAOS_ACCESSES=str(accesses),
        CHAOS_WORKLOADS=",".join(workloads),
        PYTHONPATH=os.pathsep.join(sys.path),
    )
    env.update(extra)
    return env


def _run_campaign(env, timeout=1800):
    child = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if child.returncode != 0:
        raise RuntimeError(f"campaign child failed:\n{child.stderr}")
    return dict(
        line.split(":", 1)
        for line in child.stdout.splitlines()
        if ":" in line
    )


def _journal_done_keys(cache_dir):
    """Spec keys whose *latest* journal state is ``done``."""
    states = {}
    try:
        lines = (
            Path(cache_dir) / "campaign.journal.jsonl"
        ).read_text(encoding="utf-8").splitlines()
    except OSError:
        return set()
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail from the kill
        states[record.get("key")] = record.get("state")
    return {key for key, state in states.items() if state == "done"}


def _kill_at_random_point(victim, cache_dir, rng, timeout=600):
    """SIGKILL the campaign somewhere mid-flight: after a seed-chosen
    number of specs have journaled ``done`` and the in-flight spec has
    written a checkpoint envelope (so there is both finished work to
    preserve and mid-run state to lose), plus a random extra delay.  If
    the child finishes first, the drill reduces to a pure journal/cache
    replay — still worth asserting."""
    checkpoints = Path(cache_dir) / "checkpoints"
    done_target = rng.randint(0, len(SCHEMES) - 2)
    deadline = time.monotonic() + timeout
    while (
        len(_journal_done_keys(cache_dir)) < done_target
        or not any(checkpoints.glob("*.ckpt"))
    ):
        if victim.poll() is not None:
            return
        if time.monotonic() > deadline:
            victim.kill()
            victim.wait()
            raise RuntimeError("no kill point appeared before timeout")
        time.sleep(0.02)
    remaining = rng.uniform(0.0, 1.5)
    if victim.poll() is None:
        time.sleep(remaining)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
    victim.wait()


def drill(seeds=(1, 2, 3), accesses=300, workloads=("blackscholes",)):
    """Run the kill/resume drill for each seed; raises on any violation."""
    with tempfile.TemporaryDirectory(prefix="chaos-baseline-") as tmp:
        baseline = _run_campaign(
            _child_env(Path(tmp) / "cache", accesses, workloads)
        )
    print(f"baseline: {len(baseline)} specs")
    for name in sorted(baseline):
        print(f"  {name}: {baseline[name][:16]}...")

    for seed in seeds:
        rng = random.Random(seed)
        with tempfile.TemporaryDirectory(prefix=f"chaos-{seed}-") as tmp:
            cache = Path(tmp) / "cache"
            env = _child_env(
                cache, accesses, workloads, REPRO_CHECKPOINT_INTERVAL="400"
            )
            victim = subprocess.Popen(
                [sys.executable, "-c", _CHILD],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            _kill_at_random_point(victim, cache, rng)
            done_before = _journal_done_keys(cache)
            sim_log = Path(tmp) / "resumed-simulations.log"
            resumed = _run_campaign(
                dict(env, REPRO_RESUME="1", REPRO_SIM_LOG=str(sim_log))
            )

            if resumed != baseline:
                diverged = sorted(
                    name
                    for name in baseline
                    if resumed.get(name) != baseline[name]
                )
                raise AssertionError(
                    f"seed {seed}: resumed campaign diverged from the "
                    f"baseline for {diverged}"
                )
            resimulated = (
                set(sim_log.read_text(encoding="utf-8").split())
                if sim_log.exists()
                else set()
            )
            recomputed = resimulated & done_before
            if recomputed:
                raise AssertionError(
                    f"seed {seed}: resume re-simulated journaled-done "
                    f"specs {sorted(recomputed)}"
                )
            print(
                f"seed {seed}: OK — {len(done_before)} specs served from "
                f"the journal/cache, {len(resimulated)} (re)simulated, "
                f"digests byte-identical"
            )
    print("chaos drill passed: byte-identical resume, zero recomputation")


def main():
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    drill(seeds=tuple(range(1, n_seeds + 1)))


if __name__ == "__main__":
    main()
