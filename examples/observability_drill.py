#!/usr/bin/env python3
"""Observability chaos drill: scrape, kill, and join everything on one id.

The drill boots the real service (``python -m repro.service``) with the
whole observability plane armed — flight recorder, heartbeats, watchdog —
and walks the acceptance path end to end:

1. **submit**: one sweep through ``POST /submit``; the 202 response
   carries the minted correlation id;
2. **scrape**: a scraper thread hits ``GET /metrics`` throughout the
   run; every exposition must pass the OpenMetrics validator and every
   watched counter must be scrape-to-scrape monotonic (no torn reads);
3. **kill**: once a pool worker's periodic ``inflight`` flight dump
   appears, the drill SIGKILLs that worker mid-simulation;
4. **join**: the dead worker's flight record — written *before* the
   kill — must carry the submit-time correlation id and the last
   sampled simulated cycle, and the campaign journal's entries for the
   sweep must carry the same id: one token joins the HTTP submit event,
   the journal, and the postmortem;
5. **reconcile**: after the job completes (the broken pool respawned,
   the unit retried), the final ``/metrics`` counters must equal the
   ``/stats`` JSON and the expected unit counts exactly;
6. **shutdown**: SIGTERM drains and the service exits 0.

Run:  python examples/observability_drill.py [--workdir DIR]
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parents[1] / "src")
)

from repro.service.client import ServiceClient  # noqa: E402
from repro.telemetry.flight import read_flight_records  # noqa: E402
from repro.telemetry.metrics import (  # noqa: E402
    parse_samples,
    validate_openmetrics,
)

SCHEMES = ("baseline", "disco")
WORKLOAD = "blackscholes"
#: Large enough that a simulation spans several inflight dumps (the
#: flight recorder's 1/s cadence needs a few seconds of runtime to kill
#: into), small enough that the retried unit completes quickly.
ACCESSES = 4000


# --------------------------------------------------------------------------
# service process management
# --------------------------------------------------------------------------


def _service_env(workdir):
    return dict(
        os.environ,
        REPRO_CACHE_DIR=str(workdir / "cache"),
        REPRO_FLIGHT_DIR=str(workdir / "flight"),
        REPRO_HEARTBEAT_DIR=str(workdir / "heartbeats"),
        REPRO_WATCHDOG_SECONDS="120",
        REPRO_QUARANTINE_AFTER="5",
        REPRO_RETRY_BACKOFF="0.1",
        PYTHONPATH=os.pathsep.join(sys.path),
    )


def start_service(workdir):
    port_file = workdir / "svc.port"
    log_file = open(workdir / "svc.log", "w")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", "2",
            "--rate", "100", "--burst", "100",
            "--port-file", str(port_file),
            "--drain-timeout", "120",
        ],
        env=_service_env(workdir),
        stdout=log_file,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 60.0
    while not port_file.exists():
        if process.poll() is not None:
            raise RuntimeError("service died on startup")
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("service never published its port")
        time.sleep(0.05)
    port = int(port_file.read_text())
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=300.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            ok, _ = client.health("ready")
            if ok:
                break
        except OSError:
            pass
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("service never became ready")
        time.sleep(0.05)
    print(f"service: pid {process.pid}, port {port}")
    return process, client, port


def stop_service(process):
    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=180)
    if code != 0:
        raise AssertionError(f"service exited {code}, not 0")
    print("service: clean shutdown (exit 0)")


# --------------------------------------------------------------------------
# the scraper thread
# --------------------------------------------------------------------------

WATCHED_COUNTERS = (
    "repro_service_units_completed_total",
    "repro_admission_jobs_admitted_total",
    "repro_service_retries_total",
)


class MetricsScraper(threading.Thread):
    """Continuously scrape /metrics; record any tear or non-monotone."""

    def __init__(self, port, interval=0.2):
        super().__init__(name="metrics-scraper", daemon=True)
        self.url = f"http://127.0.0.1:{port}/metrics"
        self.interval = interval
        self.scrapes = 0
        self.failures = []
        self.last = {}
        self._halt = threading.Event()

    def scrape_once(self):
        with urllib.request.urlopen(self.url, timeout=30) as response:
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode()
        if "openmetrics-text" not in content_type:
            self.failures.append(f"wrong content type {content_type!r}")
            return None
        errors = validate_openmetrics(text)
        if errors:
            self.failures.append(f"invalid exposition: {errors[:3]}")
            return None
        samples = parse_samples(text)
        for name in WATCHED_COUNTERS:
            for labels, value in samples.get(name, {}).items():
                key = (name, labels)
                if key in self.last and value < self.last[key]:
                    self.failures.append(
                        f"{name} went backwards: {self.last[key]} -> {value}"
                    )
                self.last[key] = value
        self.scrapes += 1
        return samples

    def run(self):
        while not self._halt.is_set():
            try:
                self.scrape_once()
            except Exception as exc:  # noqa: BLE001 - surfaced by driver
                self.failures.append(repr(exc))
            self._halt.wait(self.interval)

    def stop(self):
        self._halt.set()
        self.join(timeout=10)


# --------------------------------------------------------------------------
# the drill
# --------------------------------------------------------------------------


def submit_sweep(port):
    """POST /submit directly so the 202 body's correlation id is kept."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/submit",
        data=json.dumps(
            {
                "client": "drill",
                "specs": [
                    {"scheme": scheme, "workload": WORKLOAD,
                     "accesses_per_core": ACCESSES}
                    for scheme in SCHEMES
                ],
            }
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        body = json.loads(response.read())
    print(
        f"submitted job {body['job']} ({body['units']} units), "
        f"correlation {body['correlation']}"
    )
    return body["job"], body["correlation"]


def kill_one_worker(flight_dir, correlation, service_pid):
    """Wait for a worker's inflight dump carrying our correlation id,
    then SIGKILL that worker mid-simulation."""
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        for record in read_flight_records(flight_dir):
            if (
                record.get("reason") == "inflight"
                and record.get("corr") == correlation
                and record.get("pid") != service_pid
            ):
                victim = record["pid"]
                os.kill(victim, signal.SIGKILL)
                print(
                    f"SIGKILLed pool worker {victim} at simulated cycle "
                    f"{record['extra'].get('cycle')}"
                )
                return victim
        time.sleep(0.05)
    raise AssertionError("no inflight flight record ever appeared")


def check_flight_join(flight_dir, victim, correlation):
    """The postmortem contract: the dead worker's record survives the
    SIGKILL and joins the submit event on the correlation id."""
    records = {r["pid"]: r for r in read_flight_records(flight_dir)}
    record = records.get(victim)
    if record is None:
        raise AssertionError(f"no flight record for killed worker {victim}")
    if record["corr"] != correlation:
        raise AssertionError(
            f"flight corr {record['corr']!r} != submit corr {correlation!r}"
        )
    cycle = record["extra"].get("cycle")
    if not isinstance(cycle, int) or cycle < 0:
        raise AssertionError(f"flight record lacks a sampled cycle: {cycle!r}")
    if not record["events"]:
        raise AssertionError("flight record has an empty event ring")
    reasons = {r.get("reason") for r in records.values()}
    if "broken_pool" not in reasons:
        raise AssertionError(
            f"service never dumped a broken_pool record (saw {reasons})"
        )
    print(
        f"flight record joins: pid {victim}, corr {correlation}, "
        f"last cycle {cycle}, {len(record['events'])} ring events"
    )


def check_journal_join(workdir, correlation):
    """Every journal record of the sweep carries the correlation id."""
    journal = workdir / "cache" / "campaign.journal.jsonl"
    tagged = total = 0
    for line in journal.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail from the kill — tolerated by design
        total += 1
        if record.get("corr") == correlation:
            tagged += 1
    if tagged == 0:
        raise AssertionError("no journal record carries the correlation id")
    print(f"journal joins: {tagged}/{total} records tagged {correlation}")


def check_reconciliation(scraper, client, expected_units):
    """The final scrape's counters equal /stats and the unit count."""
    samples = scraper.scrape_once()
    if samples is None:
        raise AssertionError(f"final scrape invalid: {scraper.failures[-1]}")
    stats = client.stats()["counters"]
    metric_completed = samples["repro_service_units_completed_total"][()]
    if metric_completed != stats["service"]["units_completed"]:
        raise AssertionError(
            f"/metrics says {metric_completed} completed, /stats says "
            f"{stats['service']['units_completed']}"
        )
    if metric_completed != expected_units:
        raise AssertionError(
            f"{metric_completed} units completed, expected {expected_units}"
        )
    retries = samples["repro_service_retries_total"][()]
    if retries != stats["service"]["retries"] or retries < 1:
        raise AssertionError(
            f"retry counters disagree or no retry happened "
            f"(metrics {retries}, stats {stats['service']['retries']})"
        )
    outcomes = samples.get("repro_service_unit_cache_outcomes_total", {})
    outcome_sum = sum(outcomes.values())
    if outcome_sum != metric_completed:
        raise AssertionError(
            f"cache outcomes sum {outcome_sum} != completed {metric_completed}"
        )
    print(
        f"reconciled: completed={metric_completed} retries={retries} "
        f"across {scraper.scrapes} valid scrapes"
    )


def drill(workdir):
    workdir.mkdir(parents=True, exist_ok=True)
    flight_dir = workdir / "flight"
    process, client, port = start_service(workdir)
    scraper = MetricsScraper(port)
    try:
        scraper.start()
        job_id, correlation = submit_sweep(port)
        victim = kill_one_worker(flight_dir, correlation, process.pid)
        results, failures = client.wait(job_id)
        if failures or len(results) != len(SCHEMES):
            raise AssertionError(
                f"job did not complete cleanly: {len(results)} results, "
                f"failures {failures}"
            )
        print(f"job {job_id} completed despite the kill "
              f"({len(results)} results)")
        check_flight_join(flight_dir, victim, correlation)
        check_journal_join(workdir, correlation)
        scraper.stop()
        if scraper.failures:
            raise AssertionError(
                f"scraper saw {len(scraper.failures)} violations: "
                f"{scraper.failures[:3]}"
            )
        check_reconciliation(scraper, client, expected_units=len(SCHEMES))
        ok, detail = client.health("ready")
        if not ok:
            raise AssertionError(f"unready after the drill: "
                                 f"{detail.get('reasons')}")
        stop_service(process)
    finally:
        scraper.stop()
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print(
        "\nobservability drill passed: valid monotonic scrapes throughout, "
        "flight record + journal + submit joined on one correlation id, "
        "counters reconciled, clean shutdown"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        default=None,
        help="artifact directory (flight records, journal, logs); "
        "default: a temp dir, removed on success",
    )
    args = parser.parse_args()
    if args.workdir:
        drill(Path(args.workdir))
    else:
        workdir = Path(tempfile.mkdtemp(prefix="observability-drill-"))
        drill(workdir)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
