#!/usr/bin/env python3
"""Flow control vs in-network compression (paper §3.3-A).

The paper's constraint: whole-packet compression needs the packet's flits
together in one node.  Store-and-forward and virtual cut-through guarantee
that (with deep enough buffers); wormhole separates packets across routers,
which is why DISCO's engine supports *separate* (streaming) compression
with persistent base registers.

This study runs the same traffic under three flow controls and shows:

- wormhole + separate compression: compression happens (all of it in
  streaming mode) with 8-flit buffers;
- wormhole without separate compression: a 9-flit packet never fits an
  8-flit VC, so *nothing* can be compressed — the §3.3-A problem;
- virtual cut-through with deep (12-flit) buffers: whole-packet jobs work,
  at the cost of the extra buffer area the paper mentions.

Run:  python examples/flow_control_study.py
"""

from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.noc import Network, NocConfig
from repro.noc.config import FlowControl
from repro.noc.traffic import SyntheticTraffic, TrafficConfig

RATE = 0.06
CYCLES = 1200


def run(flow_control, vc_depth, separate):
    config = NocConfig(flow_control=flow_control, vc_depth=vc_depth)
    disco = DiscoConfig(separate_compression=separate)
    network = Network(
        config, router_factory=make_disco_router_factory(disco)
    )
    network.packet_priority = disco_priority
    traffic = SyntheticTraffic(
        network, TrafficConfig(injection_rate=RATE, seed=21)
    )
    traffic.run(CYCLES)
    return network.stats


def main() -> None:
    cases = [
        ("wormhole, 8-flit VCs, separate compression",
         FlowControl.WORMHOLE, 8, True),
        ("wormhole, 8-flit VCs, whole-packet only",
         FlowControl.WORMHOLE, 8, False),
        ("virtual cut-through, 12-flit VCs, whole-packet",
         FlowControl.VIRTUAL_CUT_THROUGH, 12, False),
        ("store-and-forward, 12-flit VCs, whole-packet",
         FlowControl.STORE_AND_FORWARD, 12, False),
    ]
    header = (
        f"{'configuration':48s} {'latency':>8} {'comp':>6} "
        f"{'streaming':>9} {'aborts':>7}"
    )
    print(header)
    print("-" * len(header))
    for name, flow_control, depth, separate in cases:
        stats = run(flow_control, depth, separate)
        print(
            f"{name:48s} {stats.avg_packet_latency:8.1f} "
            f"{stats.compressions:6d} {stats.separate_compressions:9d} "
            f"{stats.aborted_jobs:7d}"
        )
    print(
        "\nWith 8-flit buffers a 9-flit packet never resides whole in one "
        "router: wormhole compression requires the paper's separate "
        "(streaming) mode.  Deeper buffers + VCT/SAF enable whole-packet "
        "jobs — the buffer-area tradeoff §3.3-A describes."
    )


if __name__ == "__main__":
    main()
