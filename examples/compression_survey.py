#!/usr/bin/env python3
"""Survey every compression algorithm across the PARSEC-like workloads.

Reproduces the per-benchmark compressibility landscape behind Table 1:
which value patterns each algorithm exploits, and why SC² (statistical)
beats delta/BDI on float-heavy workloads while delta wins on pointers.

Run:  python examples/compression_survey.py
"""

from repro.compression import available_algorithms, get_algorithm
from repro.workloads import PARSEC_BENCHMARKS, ValuePool


def survey(lines_per_benchmark: int = 200, seed: int = 1) -> None:
    algorithms = available_algorithms()
    header = "benchmark".ljust(14) + "".join(a.rjust(8) for a in algorithms)
    print(header)
    print("-" * len(header))
    sums = {a: [0, 0] for a in algorithms}
    for name in sorted(PARSEC_BENCHMARKS):
        pool = ValuePool(PARSEC_BENCHMARKS[name], seed=seed)
        train = pool.sample(2 * lines_per_benchmark, seed=seed + 1)
        test = pool.sample(lines_per_benchmark, seed=seed + 2)
        row = name.ljust(14)
        for algo_name in algorithms:
            algorithm = get_algorithm(algo_name)
            trainer = getattr(algorithm, "train", None)
            if trainer is not None and algo_name in ("sc2", "fvc"):
                trainer(train)
            raw = compressed = 0
            for line in test:
                result = algorithm.compress(line)
                raw += len(line)
                compressed += result.size_bytes
            sums[algo_name][0] += raw
            sums[algo_name][1] += compressed
            row += f"{raw / compressed:8.2f}"
        print(row)
    print("-" * len(header))
    footer = "average".ljust(14)
    for algo_name in algorithms:
        raw, compressed = sums[algo_name]
        footer += f"{raw / compressed:8.2f}"
    print(footer)
    print(
        "\npaper Table 1 ratios: fpc 1.5, sfpc 1.33, bdi 1.57, sc2 2.4"
    )


if __name__ == "__main__":
    survey()
