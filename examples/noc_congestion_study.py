#!/usr/bin/env python3
"""NoC-only study: where does DISCO's overlap opportunity come from?

Sweeps the injection rate of uniform-random traffic on a 4x4 mesh and
reports, for a baseline network and a DISCO network: average packet
latency, how many packets got (de)compressed in-network, and what fraction
of decompressions were fully hidden in queueing delay versus charged at the
ejection NI (the paper's mis-prediction residue).

This is §3.2's core claim in isolation: the busier the network, the more
idle time DISCO converts into free (de)compression.

Run:  python examples/noc_congestion_study.py
"""

from repro.compression.registry import get_timing
from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.noc import Network, NocConfig
from repro.noc.traffic import SyntheticTraffic, TrafficConfig

RATES = (0.02, 0.04, 0.06, 0.08, 0.10)
CYCLES = 1500


def build_disco_network() -> Network:
    network = Network(
        NocConfig(), router_factory=make_disco_router_factory(DiscoConfig())
    )
    network.packet_priority = disco_priority
    decomp = get_timing("delta").decompression_cycles

    def eject(node, packet):
        if packet.is_compressed and packet.decompress_at_dst:
            packet.apply_decompression()
            network.stats.ni_decompressions += 1
            return decomp
        return 0

    network.eject_transform = eject
    return network


def main() -> None:
    header = (
        f"{'rate':>5} {'base lat':>9} {'disco lat':>9} {'comp':>6} "
        f"{'dec(net)':>8} {'dec(NI)':>8} {'hidden%':>8} {'aborts':>7}"
    )
    print(header)
    print("-" * len(header))
    for rate in RATES:
        base = Network(NocConfig())
        SyntheticTraffic(base, TrafficConfig(injection_rate=rate, seed=11)).run(
            CYCLES
        )
        disco = build_disco_network()
        SyntheticTraffic(
            disco, TrafficConfig(injection_rate=rate, seed=11)
        ).run(CYCLES)
        ds = disco.stats
        total_dec = ds.decompressions + ds.ni_decompressions
        hidden = 100.0 * ds.decompressions / total_dec if total_dec else 0.0
        print(
            f"{rate:5.2f} {base.stats.avg_packet_latency:9.1f} "
            f"{ds.avg_packet_latency:9.1f} {ds.compressions:6d} "
            f"{ds.decompressions:8d} {ds.ni_decompressions:8d} "
            f"{hidden:7.1f}% {ds.aborted_jobs:7d}"
        )
    print(
        "\nAs the network loads up, a growing share of decompressions "
        "completes inside router queueing (hidden%), which is DISCO's "
        "entire premise (§3.2)."
    )


if __name__ == "__main__":
    main()
