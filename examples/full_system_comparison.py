#!/usr/bin/env python3
"""Full-system walkthrough of one workload under all five schemes.

Runs a single PARSEC-like workload (default: freqmine) under baseline /
ideal / CC / CNC / DISCO and prints the Fig. 5-style latency comparison,
the Fig. 7-style energy comparison, and the raw compression activity, so
you can see where each scheme pays and saves.

Run:  python examples/full_system_comparison.py [workload] [accesses]
"""

import sys

from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.energy import energy_of_result
from repro.workloads import generate_traces, get_profile


def main(workload: str = "freqmine", accesses: int = 1200) -> None:
    config = SystemConfig.scaled_4x4()
    profile = get_profile(workload)
    print(f"workload: {workload} ({profile.description})")
    print(f"system:   {config.n_cores} tiles, "
          f"{config.llc_capacity_bytes // 1024} KB scaled NUCA\n")
    results = {}
    for scheme_name in ("baseline", "ideal", "cc", "cnc", "disco"):
        traces = generate_traces(profile, config.n_cores, accesses, seed=7)
        system = CmpSystem(
            config, make_scheme(scheme_name), traces, warmup_fraction=0.4
        )
        results[scheme_name] = system.run()

    ideal = results["ideal"].avg_miss_latency
    base_energy = energy_of_result(results["baseline"]).total
    header = (
        f"{'scheme':>9} {'latency':>8} {'vs ideal':>9} {'energy':>9} "
        f"{'rcomp':>6} {'rdec':>6} {'nidec':>6} {'LLC miss':>9}"
    )
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        energy = energy_of_result(result).total
        net = result.counters_measured
        print(
            f"{name:>9} {result.avg_miss_latency:8.1f} "
            f"{result.avg_miss_latency / ideal:9.3f} "
            f"{energy / base_energy:9.3f} "
            f"{net['router_compressions']:6d} "
            f"{net['router_decompressions']:6d} "
            f"{net['ni_decompressions']:6d} "
            f"{result.llc_miss_rate:9.3f}"
        )
    print(
        "\nlatency normalized to ideal (paper Fig. 5), energy to the "
        "no-compression baseline (paper Fig. 7)."
    )


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "freqmine"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 1200
    main(workload, accesses)
