#!/usr/bin/env python3
"""Telemetry worked example: trace a faulty torus run end to end.

Builds a 4x4 torus of DISCO routers with the NI retransmission layer on
and a deterministic fault plan injecting NI drops and payload corruption,
then turns on every observability knob at once:

- per-packet lifecycle tracing (inject → RC/VA/SA/ST per hop → engine
  events → eject, plus retransmit/CRC-reject/duplicate instants),
- the time-series stats sampler (windowed counter deltas),
- per-component kernel profiling.

The run writes three artifacts to the output directory (first CLI arg,
default ``telemetry_out/``):

- ``trace.json``  — Chrome trace-event JSON; open it at
  https://ui.perfetto.dev (one track per packet, router and engine),
- ``trace.jsonl`` — the raw event stream, one JSON object per line,
- ``profile.json`` — wall-clock attribution per kernel component.

It also prints the trace summary, a per-router hop heatmap, the packet
latency histogram and the kernel schedule, so the terminal alone shows
where the traffic went and what the faults did.

Run:  PYTHONPATH=src python examples/telemetry_demo.py [out_dir]

The CI telemetry-smoke job runs exactly this and then validates the trace
with ``python -m repro.telemetry.check telemetry_out/trace.json``.
"""

import os
import sys

from repro.compression.registry import get_timing
from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.experiments.report import render_heatmap, render_histogram
from repro.faults import FaultController, FaultPlan
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.telemetry import (
    profile_from_kernel,
    render_profile,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
    write_profile,
)
from repro.telemetry.export import latency_histogram, node_hop_counts

WIDTH = HEIGHT = 4
PACKETS = 48
LINE = bytes(range(64))


def build_network() -> Network:
    config = NocConfig(
        topology="torus",
        width=WIDTH,
        height=HEIGHT,
        vcs_per_vnet=2,  # dateline escape VCs for the torus
        retransmission=True,
        retx_timeout=256,
        stats_interval=32,
        trace_packets=True,
        trace_sample_interval=1,
    )
    network = Network(
        config, router_factory=make_disco_router_factory(DiscoConfig())
    )
    network.packet_priority = disco_priority
    decomp = get_timing("delta").decompression_cycles

    def eject(node, packet):
        if packet.is_compressed and packet.decompress_at_dst:
            packet.apply_decompression()
            network.stats.ni_decompressions += 1
            return decomp
        return 0

    network.eject_transform = eject
    network.attach_faults(
        FaultController(
            FaultPlan(seed=5, drop_rate=0.05, payload_rate=0.002),
            raise_on_violation=False,
        )
    )
    network.kernel.enable_timing(per_component=True)
    return network


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "telemetry_out"
    os.makedirs(out_dir, exist_ok=True)

    network = build_network()
    delivered = []
    network.set_delivery_handler(lambda node, p: delivered.append(p))
    n = network.config.n_nodes
    for i in range(PACKETS):
        network.send(
            Packet(
                PacketType.RESPONSE,
                src=(i * 5) % n,
                dst=(i * 11 + 3) % n,
                line=LINE,
                compressible=True,
                decompress_at_dst=True,
            )
        )
    cycles = network.run_until_quiescent(max_cycles=200_000)

    tracer, sampler = network.tracer, network.sampler
    assert tracer is not None and sampler is not None
    trace_path = os.path.join(out_dir, "trace.json")
    write_chrome_trace(trace_path, tracer.events, label="telemetry demo")
    write_jsonl(os.path.join(out_dir, "trace.jsonl"), tracer.events)
    profile = profile_from_kernel(network.kernel, cycles=cycles)
    write_profile(os.path.join(out_dir, "profile.json"), profile)

    summary = summarize_trace(tracer.events)
    print(f"ran {cycles} cycles: {len(delivered)} delivered, "
          f"{network.recovered.retransmissions} retransmissions, "
          f"{network.recovered.crc_rejections} CRC rejections")
    print(f"trace: {summary['events']} events, "
          f"{summary['packet_spans']} packet spans, "
          f"mean latency {summary['mean_latency']:.1f} cycles")
    print(f"sampler: {len(sampler.windows())} windows of "
          f"{sampler.interval} cycles")
    print()
    print(render_heatmap(
        node_hop_counts(tracer.events), WIDTH, HEIGHT,
        title="hop events per router (torus, row-major)",
    ))
    print()
    print(render_histogram(
        latency_histogram(tracer.events),
        title="packet latency histogram (cycles)",
    ))
    print()
    print(render_profile(profile))
    print()
    print(network.kernel.describe())
    print(f"\nartifacts in {out_dir}/: trace.json (open at "
          "https://ui.perfetto.dev), trace.jsonl, profile.json")


if __name__ == "__main__":
    main()
