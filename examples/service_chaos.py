#!/usr/bin/env python3
"""Chaos drill for the always-on campaign service.

The drill boots the real service (``python -m repro.service``) as a
subprocess and attacks it from both sides at once:

- **load**: four concurrent clients submit sweeps; three are polite,
  one deliberately bursts past its rate limit and must receive
  structured ``Overloaded`` sheds (HTTP 429 + ``retry_after``), each
  answered in under a second;
- **faults**: a killer thread SIGKILLs random pool worker processes
  under the service while the sweeps run, exercising the
  ``BrokenProcessPool`` respawn + retry path.

It then asserts the service's whole robustness contract:

1. every admitted job completes, and every result digest is
   byte-identical to a golden serial baseline;
2. zero lost or duplicated results — each job's stream resolves each of
   its unit indices exactly once, and the campaign journal's ``done``
   set reconciles with the content-addressed cache entries on disk;
3. sheds are structured and fast;
4. SIGTERM drains the backlog and the service exits 0;
5. (phase 2) **two** service processes sharing one cache directory run
   the same sweep concurrently without corrupting a single entry.

Run:  python examples/service_chaos.py [--workdir DIR] [--kills N]
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parents[1] / "src")
)

from repro.experiments.runner import (  # noqa: E402
    RunSpec,
    result_digest,
    run_spec,
    spec_key,
)
from repro.service.client import (  # noqa: E402
    OverloadedError,
    ServiceClient,
)

SCHEMES = ("baseline", "cc", "cnc", "disco", "ideal")
SEEDS = (1, 2)
ACCESSES = 150
WORKLOAD = "blackscholes"


def _specs():
    return [
        RunSpec(
            scheme=scheme,
            workload=WORKLOAD,
            accesses_per_core=ACCESSES,
            seed=seed,
        )
        for scheme in SCHEMES
        for seed in SEEDS
    ]


def _spec_payloads(specs):
    return [
        dict(
            scheme=s.scheme,
            workload=s.workload,
            accesses_per_core=s.accesses_per_core,
            seed=s.seed,
        )
        for s in specs
    ]


def golden_digests(workdir):
    """Serial in-process baseline: the byte-identity reference."""
    golden_cache = workdir / "golden-cache"
    os.environ["REPRO_CACHE_DIR"] = str(golden_cache)
    try:
        digests = {
            spec_key(spec): result_digest(run_spec(spec))
            for spec in _specs()
        }
    finally:
        del os.environ["REPRO_CACHE_DIR"]
    print(f"golden baseline: {len(digests)} specs")
    return digests


# --------------------------------------------------------------------------
# service process management
# --------------------------------------------------------------------------


def _service_env(cache_dir, heartbeat_dir):
    env = dict(
        os.environ,
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_HEARTBEAT_DIR=str(heartbeat_dir),
        REPRO_WATCHDOG_SECONDS="60",
        # Random SIGKILLs are interruptions, not crash loops: keep the
        # quarantine bound well above the kill count so every admitted
        # spec eventually completes.
        REPRO_QUARANTINE_AFTER="10",
        REPRO_RETRY_BACKOFF="0.1",
        PYTHONPATH=os.pathsep.join(sys.path),
    )
    return env


def start_service(workdir, cache_dir, name, rate, burst, workers=2):
    port_file = workdir / f"{name}.port"
    log_file = open(workdir / f"{name}.log", "w")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(workers),
            "--rate", str(rate),
            "--burst", str(burst),
            "--port-file", str(port_file),
            "--drain-timeout", "120",
        ],
        env=_service_env(cache_dir, workdir / "heartbeats"),
        stdout=log_file,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 60.0
    while not port_file.exists():
        if process.poll() is not None:
            raise RuntimeError(f"service {name} died on startup")
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(f"service {name} never published its port")
        time.sleep(0.05)
    port = int(port_file.read_text())
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=300.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            ok, _ = client.health("ready")
            if ok:
                break
        except OSError:
            pass
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(f"service {name} never became ready")
        time.sleep(0.05)
    print(f"service {name}: pid {process.pid}, port {port}")
    return process, client


def stop_service(process, name):
    """SIGTERM and require the clean-shutdown contract: exit code 0."""
    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=180)
    if code != 0:
        raise AssertionError(f"service {name} exited {code}, not 0")
    print(f"service {name}: clean shutdown (exit 0)")


def _pool_worker_pids(service_pid):
    """The service's forked pool workers (children, minus bookkeeping
    processes like the multiprocessing resource tracker)."""
    workers = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as handle:
                fields = handle.read().split(b")")[-1].split()
            if int(fields[1]) != service_pid:  # field 4 overall: ppid
                continue
            cmdline = Path(f"/proc/{entry}/cmdline").read_bytes()
        except (OSError, ValueError, IndexError):
            continue
        if b"resource_tracker" in cmdline:
            continue
        workers.append(int(entry))
    return workers


class WorkerKiller(threading.Thread):
    """SIGKILL a random pool worker every ``interval`` seconds."""

    def __init__(self, service_pid, kills, interval=1.5, seed=1):
        super().__init__(name="worker-killer", daemon=True)
        self.service_pid = service_pid
        self.kills = kills
        self.interval = interval
        self.rng = random.Random(seed)
        self.killed = []
        self._halt = threading.Event()

    def run(self):
        while len(self.killed) < self.kills and not self._halt.is_set():
            self._halt.wait(self.interval)
            victims = _pool_worker_pids(self.service_pid)
            if not victims:
                continue
            victim = self.rng.choice(victims)
            try:
                os.kill(victim, signal.SIGKILL)
            except OSError:
                continue
            self.killed.append(victim)
            print(f"killer: SIGKILLed pool worker {victim}")

    def stop(self):
        self._halt.set()
        self.join(timeout=10)


# --------------------------------------------------------------------------
# clients
# --------------------------------------------------------------------------


class PoliteClient(threading.Thread):
    """Submit one sweep, honor shed hints, stream it to completion."""

    def __init__(self, client, name, specs):
        super().__init__(name=f"client-{name}", daemon=True)
        self.client = client
        self.client_name = name
        self.specs = specs
        self.results = None
        self.failures = None
        self.error = None

    def run(self):
        try:
            job_id = self.client.submit_with_retry(
                specs=_spec_payloads(self.specs),
                client=self.client_name,
                attempts=30,
            )
            self.results, self.failures = self.client.wait(job_id)
        except Exception as exc:  # surfaced by the driver
            self.error = exc


class GreedyClient(threading.Thread):
    """Burst far past the rate limit; record every shed's latency."""

    def __init__(self, client, specs, submissions=8):
        super().__init__(name="client-greedy", daemon=True)
        self.client = client
        self.specs = specs
        self.submissions = submissions
        self.job_ids = []
        self.sheds = []  # (reason, retry_after, latency_seconds)
        self.results = []
        self.failures = []
        self.error = None

    def run(self):
        try:
            for index in range(self.submissions):
                chunk = self.specs[index % len(self.specs):][:2] or \
                    self.specs[:2]
                started = time.monotonic()
                try:
                    job_id = self.client.submit(
                        specs=_spec_payloads(chunk), client="greedy"
                    )
                    self.job_ids.append((job_id, len(chunk)))
                except OverloadedError as exc:
                    latency = time.monotonic() - started
                    self.sheds.append(
                        (exc.reason, exc.retry_after, latency)
                    )
            for job_id, _units in self.job_ids:
                results, failures = self.client.wait(job_id)
                self.results.append(results)
                self.failures.append(failures)
        except Exception as exc:
            self.error = exc


# --------------------------------------------------------------------------
# assertions
# --------------------------------------------------------------------------


def check_job(name, results, failures, expected_units, golden):
    """One job's contract: every unit resolved exactly once, all
    successful, every digest golden."""
    if failures:
        raise AssertionError(f"{name}: failed units: {failures}")
    indices = sorted(event["index"] for event in results)
    if indices != list(range(expected_units)):
        raise AssertionError(
            f"{name}: lost/duplicated results — indices {indices}, "
            f"expected 0..{expected_units - 1}"
        )
    for event in results:
        if event["digest"] != golden[event["key"]]:
            raise AssertionError(
                f"{name}: digest mismatch for {event['key']}"
            )


def check_cache_reconciles(cache_dir, golden):
    """Journal ∩ cache: every journaled-done spec has a loadable cache
    entry, and nothing was torn or quarantined."""
    states = {}
    journal = cache_dir / "campaign.journal.jsonl"
    for line in journal.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail from a kill — tolerated by design
        states[record.get("key")] = record.get("state")
    done = {key for key, state in states.items() if state == "done"}
    missing = [key for key in done if not (cache_dir / f"{key}.pkl").exists()]
    if missing:
        raise AssertionError(f"journaled-done specs missing on disk: {missing}")
    unknown = done - set(golden)
    if unknown:
        raise AssertionError(f"journal has unexpected spec keys: {unknown}")
    corrupt = list(cache_dir.glob("*.corrupt"))
    if corrupt:
        raise AssertionError(f"corrupt cache entries: {corrupt}")
    staged = list(cache_dir.glob("*.tmp"))
    if staged:
        raise AssertionError(f"leftover staging files: {staged}")
    print(
        f"cache reconciles: {len(done)} journaled-done specs all present, "
        f"0 corrupt, 0 staging leftovers"
    )


def check_sheds(sheds):
    if not sheds:
        raise AssertionError(
            "the greedy client was never shed — rate limit not enforced"
        )
    for reason, retry_after, latency in sheds:
        if reason not in ("rate_limited", "queue_full"):
            raise AssertionError(f"unstructured shed reason {reason!r}")
        if retry_after <= 0:
            raise AssertionError("shed without a retry_after hint")
        if latency >= 1.0:
            raise AssertionError(
                f"shed answered in {latency:.2f}s (must be < 1s)"
            )
    fastest = min(latency for _, _, latency in sheds)
    print(
        f"sheds: {len(sheds)} structured refusals, fastest {fastest*1000:.0f}ms,"
        f" all under 1s with retry_after hints"
    )


# --------------------------------------------------------------------------
# phases
# --------------------------------------------------------------------------


def phase_one(workdir, golden, kills):
    """One service, four concurrent clients, random worker SIGKILLs."""
    print("\n--- phase 1: concurrent clients + worker kills ---")
    cache = workdir / "cache"
    specs = _specs()
    service, client = start_service(
        workdir, cache, "svc", rate=3.0, burst=6.0, workers=2
    )
    killer = WorkerKiller(service.pid, kills=kills)
    polite = [
        PoliteClient(client, "alice", specs[0:4]),
        PoliteClient(client, "bob", specs[4:8]),
        PoliteClient(client, "carol", specs[8:10]),
    ]
    greedy = GreedyClient(client, specs)
    killer.start()
    for thread in (*polite, greedy):
        thread.start()
    for thread in (*polite, greedy):
        thread.join(timeout=600)
        if thread.is_alive():
            raise AssertionError(f"{thread.name} never finished")
    killer.stop()
    print(f"killer: {len(killer.killed)} worker kills delivered")

    for thread in polite:
        if thread.error is not None:
            raise AssertionError(
                f"{thread.name}: {thread.error!r}"
            ) from thread.error
        check_job(
            thread.name, thread.results, thread.failures,
            len(thread.specs), golden,
        )
    if greedy.error is not None:
        raise AssertionError(f"greedy client: {greedy.error!r}")
    for (job_id, units), results, failures in zip(
        greedy.job_ids, greedy.results, greedy.failures
    ):
        check_job(f"greedy job {job_id}", results, failures, units, golden)
    check_sheds(greedy.sheds)
    admitted = len(polite) + len(greedy.job_ids)
    print(f"all {admitted} admitted jobs complete, digests byte-identical")

    stats = client.stats()
    counters = stats["counters"]
    print(
        "service counters: "
        f"completed={counters['service']['units_completed']} "
        f"retries={counters['service']['retries']} "
        f"respawns={counters['service']['worker_respawns']} "
        f"shed={counters['admission']['jobs_shed']}"
    )
    stop_service(service, "svc")
    check_cache_reconciles(cache, golden)


def phase_two(workdir, golden):
    """Two service processes share one cache directory."""
    print("\n--- phase 2: two services, one cache directory ---")
    cache = workdir / "shared-cache"
    specs = _specs()
    service_a, client_a = start_service(
        workdir, cache, "svc-a", rate=100.0, burst=100.0, workers=2
    )
    service_b, client_b = start_service(
        workdir, cache, "svc-b", rate=100.0, burst=100.0, workers=2
    )
    # The same full sweep through both services at once: every spec key
    # is racing two publishers.
    runners = [
        PoliteClient(client_a, "host-a", specs),
        PoliteClient(client_b, "host-b", specs),
    ]
    for thread in runners:
        thread.start()
    for thread in runners:
        thread.join(timeout=600)
        if thread.is_alive():
            raise AssertionError(f"{thread.name} never finished")
    for thread in runners:
        if thread.error is not None:
            raise AssertionError(f"{thread.name}: {thread.error!r}")
        check_job(
            thread.name, thread.results, thread.failures, len(specs), golden
        )
    stop_service(service_a, "svc-a")
    stop_service(service_b, "svc-b")
    check_cache_reconciles(cache, golden)
    print("two services shared one cache without a single torn entry")


def drill(workdir, kills=3):
    workdir.mkdir(parents=True, exist_ok=True)
    golden = golden_digests(workdir)
    phase_one(workdir, golden, kills)
    phase_two(workdir, golden)
    print(
        "\nservice chaos drill passed: byte-identical results, zero "
        "lost/duplicated units, structured sub-second sheds, clean "
        "shutdowns, shared-cache safety"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        default=None,
        help="artifact directory (journal, heartbeats, logs); "
        "default: a temp dir, removed on success",
    )
    parser.add_argument("--kills", type=int, default=3)
    args = parser.parse_args()
    if args.workdir:
        drill(Path(args.workdir), kills=args.kills)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="service-chaos-"))
        drill(workdir, kills=args.kills)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
