#!/usr/bin/env python3
"""Quickstart: the three layers of the DISCO reproduction in one script.

1. Compress real cache lines with the pluggable algorithms.
2. Watch a DISCO router compress packets inside a congested NoC.
3. Run a small full-system CMP simulation and compare schemes.

Run:  python examples/quickstart.py
"""

from repro.compression import available_algorithms, get_algorithm
from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.noc import Network, NocConfig
from repro.noc.traffic import SyntheticTraffic, TrafficConfig
from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.workloads import generate_traces, get_profile


def demo_compression() -> None:
    print("=" * 64)
    print("1. Cache-line compression")
    print("=" * 64)
    pool_line = bytes.fromhex(
        "00000000010000000200000003000000"
        "04000000050000000600000007000000"
    ) * 2  # small integers in 32-bit fields
    for name in available_algorithms():
        algorithm = get_algorithm(name)
        compressed = algorithm.compress(pool_line)
        assert algorithm.decompress(compressed) == pool_line
        print(
            f"  {name:6s}: 64 B -> {compressed.size_bytes:2d} B "
            f"(ratio {compressed.ratio:4.1f}x)"
        )


def demo_disco_router() -> None:
    print()
    print("=" * 64)
    print("2. In-network compression under congestion")
    print("=" * 64)
    network = Network(
        NocConfig(width=4, height=4),
        router_factory=make_disco_router_factory(DiscoConfig()),
    )
    network.packet_priority = disco_priority
    traffic = SyntheticTraffic(
        network, TrafficConfig(injection_rate=0.08, seed=1)
    )
    traffic.run(2000)
    stats = network.stats
    print(f"  packets delivered:        {stats.packets_ejected}")
    print(f"  avg packet latency:       {stats.avg_packet_latency:.1f} cycles")
    print(f"  in-network compressions:  {stats.compressions} "
          f"({stats.separate_compressions} streaming)")
    print(f"  in-network decompressions:{stats.decompressions}")
    print(f"  non-blocking aborts:      {stats.aborted_jobs}")
    print(f"  flits saved on the wire:  {stats.flits_saved}")


def demo_full_system() -> None:
    print()
    print("=" * 64)
    print("3. Full-system comparison (small run)")
    print("=" * 64)
    config = SystemConfig.scaled_4x4()
    profile = get_profile("canneal")
    for scheme_name in ("baseline", "cc", "disco"):
        traces = generate_traces(profile, config.n_cores, 400, seed=3)
        system = CmpSystem(
            config, make_scheme(scheme_name), traces, warmup_fraction=0.3
        )
        result = system.run()
        print(
            f"  {scheme_name:8s}: avg miss latency "
            f"{result.avg_miss_latency:6.1f} cycles, "
            f"LLC miss rate {result.llc_miss_rate:.2f}, "
            f"{result.cycles} cycles total"
        )


if __name__ == "__main__":
    demo_compression()
    demo_disco_router()
    demo_full_system()
