"""Fig. 5 benchmark: latency with delta compression (CC/CNC/DISCO vs ideal).

Paper: DISCO beats CC by ~12 % and CNC by ~10.1 % on average.  The shape
assertions check orderings and ballpark factors, not absolute numbers.

Wall-clock trajectory: every run appends to ``bench_results/BENCH_fig5.json``
(see :func:`common.append_bench_fig5`), which pins the pre-event-kernel
tick-all baseline (45.954 s cold) that speedups are quoted against.
"""

import time

from common import (
    BENCH_ACCESSES,
    BENCH_WORKLOADS,
    append_bench_fig5,
    once,
    save_and_print,
)

from repro.experiments.fig5 import fig5, render
from repro.experiments.runner import simulated_runs


def test_fig5(benchmark):
    before = simulated_runs()
    start = time.perf_counter()
    result = once(
        benchmark,
        lambda: fig5(
            workloads=BENCH_WORKLOADS, accesses_per_core=BENCH_ACCESSES
        ),
    )
    wall = time.perf_counter() - start
    save_and_print('fig5', render(result))
    append_bench_fig5(
        config="bench",
        wall_seconds=wall,
        cache_hit=simulated_runs() == before,
        extra={
            "workloads": list(result.workloads),
            "accesses_per_core": BENCH_ACCESSES,
            "average": result.average,
            "disco_vs_cc": result.improvement_of_disco_over("cc"),
            "disco_vs_cnc": result.improvement_of_disco_over("cnc"),
        },
    )
    avg = result.average
    # DISCO outperforms CC on average (paper: ~12%).
    assert avg["disco"] < avg["cc"]
    assert result.improvement_of_disco_over("cc") > 0.03
    # All compressing schemes land near the ideal (within ~25%).
    for scheme in ("cc", "cnc", "disco"):
        assert 0.7 <= avg[scheme] <= 1.3
    # The no-compression baseline loses to DISCO (capacity + traffic);
    # compute-bound workloads keep it close to ideal, so the comparison
    # point is DISCO, not every compressing scheme.
    assert avg["baseline"] > avg["disco"]
