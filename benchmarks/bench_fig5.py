"""Fig. 5 benchmark: latency with delta compression (CC/CNC/DISCO vs ideal).

Paper: DISCO beats CC by ~12 % and CNC by ~10.1 % on average.  The shape
assertions check orderings and ballpark factors, not absolute numbers.
"""

from common import save_and_print, BENCH_ACCESSES, BENCH_WORKLOADS, once

from repro.experiments.fig5 import fig5, render


def test_fig5(benchmark):
    result = once(
        benchmark,
        lambda: fig5(
            workloads=BENCH_WORKLOADS, accesses_per_core=BENCH_ACCESSES
        ),
    )
    save_and_print('fig5', render(result))
    avg = result.average
    # DISCO outperforms CC on average (paper: ~12%).
    assert avg["disco"] < avg["cc"]
    assert result.improvement_of_disco_over("cc") > 0.03
    # All compressing schemes land near the ideal (within ~25%).
    for scheme in ("cc", "cnc", "disco"):
        assert 0.7 <= avg[scheme] <= 1.3
    # The no-compression baseline loses to DISCO (capacity + traffic);
    # compute-bound workloads keep it close to ideal, so the comparison
    # point is DISCO, not every compressing scheme.
    assert avg["baseline"] > avg["disco"]
