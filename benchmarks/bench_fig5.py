"""Fig. 5 benchmark: latency with delta compression (CC/CNC/DISCO vs ideal).

Paper: DISCO beats CC by ~12 % and CNC by ~10.1 % on average.  The shape
assertions check orderings and ballpark factors, not absolute numbers.
"""

import time

from common import (
    BENCH_ACCESSES,
    BENCH_WORKLOADS,
    once,
    save_and_print,
    save_json,
)

from repro.experiments.fig5 import fig5, render


def test_fig5(benchmark):
    start = time.perf_counter()
    result = once(
        benchmark,
        lambda: fig5(
            workloads=BENCH_WORKLOADS, accesses_per_core=BENCH_ACCESSES
        ),
    )
    wall = time.perf_counter() - start
    save_and_print('fig5', render(result))
    save_json(
        'BENCH_fig5',
        {
            "wall_seconds": round(wall, 3),
            "workloads": result.workloads,
            "accesses_per_core": BENCH_ACCESSES,
            "normalized": result.normalized,
            "average": result.average,
            "disco_vs_cc": result.improvement_of_disco_over("cc"),
            "disco_vs_cnc": result.improvement_of_disco_over("cnc"),
        },
    )
    avg = result.average
    # DISCO outperforms CC on average (paper: ~12%).
    assert avg["disco"] < avg["cc"]
    assert result.improvement_of_disco_over("cc") > 0.03
    # All compressing schemes land near the ideal (within ~25%).
    for scheme in ("cc", "cnc", "disco"):
        assert 0.7 <= avg[scheme] <= 1.3
    # The no-compression baseline loses to DISCO (capacity + traffic);
    # compute-bound workloads keep it close to ideal, so the comparison
    # point is DISCO, not every compressing scheme.
    assert avg["baseline"] > avg["disco"]
