"""§4.3 benchmark: hardware overhead of DISCO (structural area model)."""

from common import save_and_print, once

from repro.experiments.overhead import overhead, render


def test_overhead(benchmark):
    report = once(benchmark, overhead)
    save_and_print('overhead', render(report))
    # Paper: +17.2% of the router; our structural model should land close.
    assert 0.12 <= report.router_overhead <= 0.25
    # Paper: <1% of the 4MB NUCA cache across 16 tiles.
    assert report.cache_overhead < 0.01
    # Paper: DISCO needs about half of CNC's compressor area.
    assert report.disco_vs_cnc_area < 0.75
