"""Fig. 6 benchmark: FPC and SC² under CC/CNC/DISCO.

Paper: DISCO gains 11-16 %, the most with SC² (15.5 % over CC, 16.7 % over
CNC) because SC²'s long latency is what DISCO hides; CNC falls behind CC
for the expensive algorithms (two-level compression pays latency twice).
"""

from common import save_and_print, BENCH_ACCESSES, BENCH_WORKLOADS, once

from repro.experiments.fig6 import fig6, render


def test_fig6(benchmark):
    result = once(
        benchmark,
        lambda: fig6(
            workloads=BENCH_WORKLOADS, accesses_per_core=BENCH_ACCESSES
        ),
    )
    save_and_print('fig6', render(result))
    for algorithm in ("fpc", "sc2"):
        fig = result.per_algorithm[algorithm]
        assert fig.improvement_of_disco_over("cc") > 0.03
        assert fig.improvement_of_disco_over("cnc") > 0.0
    # DISCO's edge over CNC grows with algorithm latency (SC2 > FPC gap,
    # the paper's headline Fig. 6 observation).
    sc2_gain = result.improvement("sc2", "cnc")
    fpc_gain = result.improvement("fpc", "cnc")
    assert sc2_gain >= fpc_gain - 0.02
