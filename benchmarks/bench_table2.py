"""Table 2 benchmark: render and verify the baseline system parameters."""

from common import save_and_print, once

from repro.experiments.table2 import render, verify_table2


def test_table2(benchmark):
    problems = once(benchmark, verify_table2)
    save_and_print('table2', render())
    assert problems == []
