"""Table 1 benchmark: compression scheme parameters + measured ratios."""

from common import save_and_print, once

from repro.experiments.table1 import render, table1


def test_table1(benchmark):
    rows = once(benchmark, lambda: table1(lines_per_profile=100))
    save_and_print('table1', render(rows))
    by_name = {r.algorithm: r for r in rows}
    # Paper Table 1 shape: SC2 has the highest ratio; SFPC the lowest of
    # the pattern schemes; delta/BDI in between.
    assert by_name["sc2"].measured_ratio > by_name["delta"].measured_ratio
    assert by_name["delta"].measured_ratio > by_name["sfpc"].measured_ratio
    assert by_name["fpc"].measured_ratio > by_name["sfpc"].measured_ratio
    # Ratios land in the published neighbourhood.
    assert 1.3 <= by_name["fpc"].measured_ratio <= 1.9
    assert 1.4 <= by_name["delta"].measured_ratio <= 1.9
    assert by_name["sc2"].measured_ratio >= 1.8
