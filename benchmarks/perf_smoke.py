"""CI perf smoke: a reduced fig5 sweep must stay within 2x of its record.

Standalone (``python benchmarks/perf_smoke.py``): runs the fig5 latency
experiment at a reduced scale (two workloads, short traces), appends the
wall-clock to the ``bench_results/BENCH_fig5.json`` trajectory with
``config: "smoke"``, and exits non-zero if the run regressed by more
than :data:`REGRESSION_FACTOR` against the best previous *cold* smoke
entry.  Only like configurations are compared — the smoke record never
gates the full bench configuration or vice versa.

The 2x headroom absorbs host-speed variance between the machine that
recorded the reference and the CI runner; a genuine scheduler regression
(e.g. reverting the event-driven kernel to tick-everything) costs well
over 2x and trips the gate.

A run served entirely from the runner's caches measures nothing; it is
recorded as ``cache_hit: true`` and skips the regression check (CI uses
a fresh per-job cache directory, so its runs are always cold).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import _results_dir, append_bench_fig5  # noqa: E402

SMOKE_WORKLOADS = ("blackscholes", "fluidanimate")
SMOKE_ACCESSES = 400
REGRESSION_FACTOR = 2.0


def best_cold_smoke_seconds() -> float:
    """The fastest cold smoke run on record (the regression reference)."""
    path = os.path.join(_results_dir(), "BENCH_fig5.json")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return 0.0
    cold = [
        run["wall_seconds"]
        for run in payload.get("runs", [])
        if run.get("config") == "smoke" and not run.get("cache_hit")
    ]
    return min(cold) if cold else 0.0


def main() -> int:
    from repro.experiments.fig5 import fig5
    from repro.experiments.runner import simulated_runs

    reference = best_cold_smoke_seconds()
    before = simulated_runs()
    start = time.perf_counter()
    result = fig5(
        workloads=SMOKE_WORKLOADS, accesses_per_core=SMOKE_ACCESSES
    )
    wall = time.perf_counter() - start
    cache_hit = simulated_runs() == before
    append_bench_fig5(
        config="smoke",
        wall_seconds=wall,
        cache_hit=cache_hit,
        extra={
            "workloads": list(SMOKE_WORKLOADS),
            "accesses_per_core": SMOKE_ACCESSES,
        },
    )
    print(f"perf smoke: {wall:.2f}s "
          f"({'cache hit' if cache_hit else 'cold'}), "
          f"disco vs cc {result.improvement_of_disco_over('cc'):+.1%}")
    if cache_hit:
        print("perf smoke: run was served from cache; nothing to gate")
        return 0
    if not reference:
        print("perf smoke: no cold smoke reference on record; "
              "this run becomes the reference")
        return 0
    limit = reference * REGRESSION_FACTOR
    print(f"perf smoke: reference {reference:.2f}s, limit {limit:.2f}s")
    if wall > limit:
        print(f"perf smoke: REGRESSION — {wall:.2f}s exceeds "
              f"{REGRESSION_FACTOR:.0f}x the {reference:.2f}s reference")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
