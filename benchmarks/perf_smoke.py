"""CI perf smoke: a reduced fig5 sweep must stay within 2x of its record.

Standalone (``python benchmarks/perf_smoke.py``): runs the fig5 latency
experiment at a reduced scale (two workloads, short traces) under the
event kernel *and* the batched kernel (``REPRO_KERNEL_MODE=batch``),
appends both wall-clocks to the ``bench_results/BENCH_fig5.json``
trajectory with ``config: "smoke"``, and exits non-zero if either leg
regressed by more than :data:`REGRESSION_FACTOR` against the best
previous *cold* smoke entry **for the same kernel mode**.  Only like
configurations are compared — the smoke record never gates the full
bench configuration or vice versa, and the event record never gates the
batch leg.

The batch leg is also a correctness gate: every spec in the smoke grid
must produce the same counter snapshot (modulo the scheduler-internal
``kernel`` stat group), cycle count and miss latency under both kernels.
A divergence exits non-zero immediately — digest drift is a bug, never
a perf trade.

On top of the saturated smoke grid, a mostly-idle 16x16 mesh (the sparse
configuration: 256 cores, a few dozen accesses each) is timed under both
kernels and written to ``bench_results/BENCH_sparse.json`` — the regime
where active-set sweeps matter more than per-stage cost.

The 2x headroom absorbs host-speed variance between the machine that
recorded the reference and the CI runner; a genuine scheduler regression
(e.g. reverting the event-driven kernel to tick-everything) costs well
over 2x and trips the gate.

A run served entirely from the runner's caches measures nothing; it is
recorded as ``cache_hit: true`` and skips the regression check (CI uses
a fresh per-job cache directory, so its runs are always cold).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import _results_dir, append_bench_fig5, save_json  # noqa: E402

SMOKE_WORKLOADS = ("blackscholes", "fluidanimate")
SMOKE_ACCESSES = 400
REGRESSION_FACTOR = 2.0

#: The mostly-idle mesh: 256 nodes, short bursty traces, long drain tails.
SPARSE_WIDTH = SPARSE_HEIGHT = 16
SPARSE_ACCESSES = 40
SPARSE_SCHEMES = ("baseline", "disco")


def best_cold_smoke_seconds(kernel: str = "event") -> float:
    """The fastest cold smoke run on record for ``kernel`` (the
    regression reference).  Entries predating the kernel tag were all
    event-mode runs."""
    path = os.path.join(_results_dir(), "BENCH_fig5.json")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return 0.0
    cold = [
        run["wall_seconds"]
        for run in payload.get("runs", [])
        if run.get("config") == "smoke"
        and not run.get("cache_hit")
        and run.get("kernel", "event") == kernel
    ]
    return min(cold) if cold else 0.0


def _smoke_grid():
    from repro.experiments.fig5 import REFERENCE, SCHEMES
    from repro.experiments.runner import RunSpec

    return [
        RunSpec(
            scheme=scheme, workload=workload,
            accesses_per_core=SMOKE_ACCESSES,
        )
        for workload in SMOKE_WORKLOADS
        for scheme in (REFERENCE, *SCHEMES)
    ]


def _comparable(result):
    """Everything a kernel mode must not change: the full counter
    snapshot minus the scheduler's own ``kernel`` stat group."""
    snapshot = result.snapshot_full
    return (
        {g: snapshot[g] for g in snapshot if g != "kernel"},
        result.cycles,
        result.avg_miss_latency,
    )


def _run_smoke_leg(kernel: str):
    """One cold fig5 smoke sweep under ``kernel``; returns
    (wall, cache_hit, fig5_result, per-spec comparables)."""
    from repro.experiments.fig5 import fig5
    from repro.experiments.runner import run_spec, simulated_runs

    os.environ["REPRO_KERNEL_MODE"] = kernel
    before = simulated_runs()
    start = time.perf_counter()
    result = fig5(workloads=SMOKE_WORKLOADS, accesses_per_core=SMOKE_ACCESSES)
    wall = time.perf_counter() - start
    cache_hit = simulated_runs() == before
    # Memo readbacks (the sweep above just populated the mode-keyed cache).
    comparables = {
        (spec.scheme, spec.workload): _comparable(run_spec(spec))
        for spec in _smoke_grid()
    }
    append_bench_fig5(
        config="smoke",
        wall_seconds=wall,
        cache_hit=cache_hit,
        extra={
            "workloads": list(SMOKE_WORKLOADS),
            "accesses_per_core": SMOKE_ACCESSES,
        },
    )
    print(f"perf smoke [{kernel}]: {wall:.2f}s "
          f"({'cache hit' if cache_hit else 'cold'}), "
          f"disco vs cc {result.improvement_of_disco_over('cc'):+.1%}")
    return wall, cache_hit, result, comparables


def _gate(kernel: str, wall: float, cache_hit: bool) -> int:
    if cache_hit:
        print(f"perf smoke [{kernel}]: run was served from cache; "
              f"nothing to gate")
        return 0
    reference = best_cold_smoke_seconds(kernel)
    if not reference:
        print(f"perf smoke [{kernel}]: no cold smoke reference on record; "
              f"this run becomes the reference")
        return 0
    limit = reference * REGRESSION_FACTOR
    print(f"perf smoke [{kernel}]: reference {reference:.2f}s, "
          f"limit {limit:.2f}s")
    if wall > limit:
        print(f"perf smoke [{kernel}]: REGRESSION — {wall:.2f}s exceeds "
              f"{REGRESSION_FACTOR:.0f}x the {reference:.2f}s reference")
        return 1
    return 0


def run_sparse() -> dict:
    """Time the mostly-idle 16x16 mesh under both kernels (always cold:
    goes through ``runner._simulate`` directly, no caches)."""
    from repro.experiments.runner import RunSpec, _simulate

    runs = []
    for kernel in ("event", "batch"):
        os.environ["REPRO_KERNEL_MODE"] = kernel
        for scheme in SPARSE_SCHEMES:
            spec = RunSpec(
                scheme=scheme, workload="blackscholes",
                width=SPARSE_WIDTH, height=SPARSE_HEIGHT,
                accesses_per_core=SPARSE_ACCESSES,
            )
            start = time.perf_counter()
            result = _simulate(spec)
            wall = time.perf_counter() - start
            runs.append({
                "kernel": kernel,
                "scheme": scheme,
                "wall_seconds": round(wall, 3),
                "cycles": result.cycles,
            })
            print(f"sparse [{kernel}/{scheme}]: {wall:.2f}s, "
                  f"{result.cycles} cycles")
    by_kernel = {
        kernel: sum(
            run["wall_seconds"] for run in runs if run["kernel"] == kernel
        )
        for kernel in ("event", "batch")
    }
    payload = {
        "description": (
            "Mostly-idle mesh wall-clock: "
            f"{SPARSE_WIDTH}x{SPARSE_HEIGHT} nodes, "
            f"{SPARSE_ACCESSES} accesses/core, blackscholes, "
            f"schemes {list(SPARSE_SCHEMES)}, cold (uncached) runs"
        ),
        "runs": runs,
        "total_seconds": {k: round(v, 3) for k, v in by_kernel.items()},
        "speedup_batch_vs_event": round(
            by_kernel["event"] / by_kernel["batch"], 3
        ) if by_kernel["batch"] else None,
    }
    save_json("BENCH_sparse", payload)
    print(f"sparse: event {by_kernel['event']:.2f}s, "
          f"batch {by_kernel['batch']:.2f}s "
          f"({payload['speedup_batch_vs_event']}x)")
    return payload


def main() -> int:
    saved_mode = os.environ.get("REPRO_KERNEL_MODE")
    status = 0
    try:
        event_wall, event_hit, _result, event_cmp = _run_smoke_leg("event")
        status |= _gate("event", event_wall, event_hit)

        batch_wall, batch_hit, _result, batch_cmp = _run_smoke_leg("batch")
        status |= _gate("batch", batch_wall, batch_hit)

        # Correctness gate: batch must be bit-identical to event on every
        # spec of the grid (modulo the scheduler's own stat group).
        diverged = [key for key in event_cmp if batch_cmp[key] != event_cmp[key]]
        if diverged:
            print(f"perf smoke: DIGEST DIVERGENCE — batch kernel differs "
                  f"from event on {diverged}")
            status |= 1
        else:
            print(f"perf smoke: batch digests identical to event on all "
                  f"{len(event_cmp)} smoke specs")

        run_sparse()
    finally:
        if saved_mode is None:
            os.environ.pop("REPRO_KERNEL_MODE", None)
        else:
            os.environ["REPRO_KERNEL_MODE"] = saved_mode
    return status


if __name__ == "__main__":
    sys.exit(main())
