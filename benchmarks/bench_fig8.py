"""Fig. 8 benchmark: DISCO scalability across 2x2 / 4x4 / 8x8 meshes.

Paper: the DISCO-vs-CC gain grows from insignificant on 4 banks to ~10 %
on 16 to ~22 % on 64 — bigger meshes mean more queueing to hide latency in
and more exposure of CC's per-access penalty.
"""

from common import save_and_print, BENCH_FIG8_MESHES, BENCH_FIG8_WORKLOADS, BENCH_ACCESSES, once

from repro.experiments.fig8 import fig8, render


def test_fig8(benchmark):
    result = once(
        benchmark,
        lambda: fig8(
            workloads=BENCH_FIG8_WORKLOADS,
            meshes=BENCH_FIG8_MESHES,
            accesses_per_core=BENCH_ACCESSES,
        ),
    )
    save_and_print('fig8', render(result))
    gains = [result.disco_gain_over_cc(mesh) for mesh in result.meshes]
    # DISCO wins at every scale, clearly at 4x4 and 8x8 (paper: 10%/22%).
    assert all(g > 0.0 for g in gains)
    assert gains[1] > 0.05 and gains[2] > 0.05
    # The paper's growth *mechanism* — the share of decompressions hidden
    # inside router queueing — must grow with mesh size.  (The headline
    # gain itself stays flat here because this DISCO's bank-side fallback
    # keeps its capacity/serialization advantages congestion-independent;
    # see EXPERIMENTS.md for the analysis of this deviation.)
    overlaps = [result.overlap_share[mesh] for mesh in result.meshes]
    assert overlaps[-1] > overlaps[0]
