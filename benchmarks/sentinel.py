"""Regression sentinel: diff new bench entries against the trajectory.

``perf_smoke.py`` gates its *own* fresh run; this sentinel gates the
**committed trajectory** — it reads every ``bench_results/BENCH_*.json``
file, groups comparable runs, and renders an explicit threshold verdict
for each group without running a single simulation::

    python benchmarks/sentinel.py                # verdict per group
    python benchmarks/sentinel.py --threshold 1.5
    python benchmarks/sentinel.py --json         # machine-readable

A *group* is one comparable configuration: ``(config, kernel)`` for the
fig5-style trajectory, ``(kernel, scheme)`` for the sparse one.  Within
a group only **cold** runs count (a cache-hit run times a dict lookup);
the newest cold run is the candidate and the fastest *earlier* cold run
is the reference.  The verdict is::

    OK          newest <= threshold x reference
    REGRESSION  newest >  threshold x reference   (exit status 1)
    BASELINE    the group has no earlier cold run to compare against

The default threshold matches ``perf_smoke.REGRESSION_FACTOR`` (2x):
generous enough to absorb host variance between the machines that
appended entries, tight enough that a tick-everything-style regression —
which costs well over 2x — trips CI.  The ``metrics-smoke`` job runs
this against the committed trajectory on every PR, so a bench entry that
sneaks a regression into ``bench_results/`` fails the build even if the
perf job itself did not re-run that configuration.
"""

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import _results_dir  # noqa: E402

#: Matches perf_smoke.REGRESSION_FACTOR (kept literal: the sentinel must
#: not import simulation modules — it is a pure file reader).
DEFAULT_THRESHOLD = 2.0


def _group_key(run: Dict) -> Optional[Tuple]:
    """The comparability key for one run entry, or ``None`` to skip it."""
    wall = run.get("wall_seconds")
    if not isinstance(wall, (int, float)) or wall <= 0:
        return None
    if run.get("cache_hit"):
        return None  # a cache-hit run measured a dict lookup
    if "config" in run:
        return ("config", run["config"], run.get("kernel", "event"))
    if "scheme" in run:
        return ("scheme", run.get("kernel", "event"), run["scheme"])
    return None


def _load_runs(path: str) -> List[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"sentinel: {path}: unreadable ({exc})", file=sys.stderr)
        return []
    runs = payload.get("runs")
    return runs if isinstance(runs, list) else []


def evaluate_trajectory(
    path: str, threshold: float = DEFAULT_THRESHOLD
) -> List[Dict]:
    """Verdicts for every comparable group in one ``BENCH_*.json``.

    Trajectory order is append order, so "newest" is the last cold
    entry of its group and the reference is the fastest cold entry
    *before* it — the candidate must never gate against itself.
    """
    grouped: Dict[Tuple, List[float]] = {}
    for run in _load_runs(path):
        key = _group_key(run)
        if key is None:
            continue
        grouped.setdefault(key, []).append(float(run["wall_seconds"]))
    verdicts = []
    name = os.path.basename(path)
    for key, walls in sorted(grouped.items()):
        label = f"{name}:{'/'.join(str(part) for part in key[1:])}"
        newest = walls[-1]
        earlier = walls[:-1]
        if not earlier:
            verdicts.append(
                {
                    "group": label,
                    "verdict": "BASELINE",
                    "newest_seconds": round(newest, 3),
                    "reference_seconds": None,
                    "limit_seconds": None,
                    "threshold": threshold,
                    "runs": len(walls),
                }
            )
            continue
        reference = min(earlier)
        limit = reference * threshold
        verdicts.append(
            {
                "group": label,
                "verdict": "OK" if newest <= limit else "REGRESSION",
                "newest_seconds": round(newest, 3),
                "reference_seconds": round(reference, 3),
                "limit_seconds": round(limit, 3),
                "threshold": threshold,
                "runs": len(walls),
            }
        )
    return verdicts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/sentinel.py",
        description="Diff new bench entries against the pinned trajectory.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="trajectory files (default: bench_results/BENCH_*.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"regression factor (default {DEFAULT_THRESHOLD}x)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit verdicts as JSON"
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")
    paths = args.paths or sorted(
        glob.glob(os.path.join(_results_dir(), "BENCH_*.json"))
    )
    if not paths:
        print("sentinel: no trajectory files found", file=sys.stderr)
        return 2
    verdicts: List[Dict] = []
    for path in paths:
        verdicts.extend(evaluate_trajectory(path, args.threshold))
    if args.json:
        print(json.dumps({"verdicts": verdicts}, indent=2))
    else:
        for verdict in verdicts:
            if verdict["verdict"] == "BASELINE":
                print(
                    f"sentinel: {verdict['group']}: BASELINE "
                    f"({verdict['newest_seconds']}s, no prior cold run)"
                )
            else:
                print(
                    f"sentinel: {verdict['group']}: {verdict['verdict']} — "
                    f"newest {verdict['newest_seconds']}s vs limit "
                    f"{verdict['limit_seconds']}s "
                    f"({verdict['threshold']}x of "
                    f"{verdict['reference_seconds']}s reference)"
                )
    regressions = [v for v in verdicts if v["verdict"] == "REGRESSION"]
    if regressions:
        print(
            f"sentinel: {len(regressions)} regression(s) in the committed "
            "trajectory",
            file=sys.stderr,
        )
        return 1
    # With --json, stdout is the machine-readable document alone.
    print(
        f"sentinel: {len(verdicts)} group(s) checked, no regressions",
        file=sys.stderr if args.json else sys.stdout,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
