"""Ablation bench: the design choices DESIGN.md calls out.

Not a paper figure — this quantifies the individual DISCO mechanisms:

- the §3.2 confidence mechanism (vs compress-whenever-possible);
- §3.3-B coordinated scheduling (demoting compressible packets);
- non-blocking shadow packets (§3.2 step-3).
"""

from common import save_and_print, BENCH_ACCESSES, once

from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.core import DiscoConfig
from repro.core.scheduling import baseline_priority
from repro.experiments.report import format_table
from repro.workloads import generate_traces, get_profile

WORKLOAD = "dedup"


def run_variant(disco=None, priority=None):
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(
        get_profile(WORKLOAD), config.n_cores, BENCH_ACCESSES, seed=7
    )
    scheme = make_scheme("disco", disco=disco)
    system = CmpSystem(config, scheme, traces, warmup_fraction=0.4)
    if priority is not None:
        system.network.packet_priority = priority
    return system.run()


def test_ablation(benchmark):
    def sweep():
        variants = {
            "disco (full)": run_variant(),
            "hasty (thresholds off)": run_variant(
                disco=DiscoConfig(cc_threshold=-10.0, cd_threshold=-10.0,
                                  beta=0.0)
            ),
            "no scheduling policy": run_variant(priority=baseline_priority),
            "blocking engine": run_variant(
                disco=DiscoConfig(non_blocking=False)
            ),
        }
        return variants

    variants = once(benchmark, sweep)
    rows = []
    for name, result in variants.items():
        counters = result.counters_measured
        rows.append(
            [
                name,
                result.avg_miss_latency,
                counters["router_compressions"],
                counters["router_decompressions"],
                result.network.aborted_jobs,
            ]
        )
    save_and_print(
        "ablation",
        format_table(
            ["variant", "miss latency", "rcomp", "rdec", "aborts"],
            rows,
            title=f"DISCO ablation on {WORKLOAD}",
        ),
    )
    full = variants["disco (full)"].avg_miss_latency
    hasty = variants["hasty (thresholds off)"].avg_miss_latency
    # The confidence mechanism is what keeps DISCO from hurting itself:
    # compress-always commits packets that then cannot be scheduled.
    assert full < hasty
