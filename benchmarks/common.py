"""Shared benchmark configuration.

The benchmarks regenerate the paper's tables/figures at a reduced default
scale so the whole suite stays tractable in pure Python; set
``REPRO_BENCH_FULL=1`` for the figure-quality configuration (all eight
workloads, full trace length — expect a long run).

Fig. 5 and Fig. 7 intentionally share simulation specs: the runner memoizes
(scheme, workload, config) results within the pytest session, so the energy
view prices the very runs the latency view measured, as in the paper.
"""

import json
import os
import time

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Workloads used by the figure benchmarks.
BENCH_WORKLOADS = (
    ("blackscholes", "bodytrack", "canneal", "dedup",
     "fluidanimate", "freqmine", "streamcluster", "x264")
    if FULL
    else ("blackscholes", "canneal", "dedup", "fluidanimate")
)

#: Accesses per core for the CMP simulations.
BENCH_ACCESSES = 1500 if FULL else 800

#: Workloads/meshes for the Fig. 8 scalability sweep.
BENCH_FIG8_WORKLOADS = (
    ("canneal", "freqmine", "streamcluster", "x264")
    if FULL
    else ("canneal", "fluidanimate")
)
BENCH_FIG8_MESHES = ((2, 2), (4, 4), (8, 8))


def _results_dir() -> str:
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    return out_dir


def _record_timing(name: str, seconds: float, cache_hit=None) -> None:
    """Append this run's wall-clock to ``bench_results/timing.json``.

    The file maps benchmark name -> list of ``{when, seconds, full,
    cache_hit}`` entries, newest last, so successive runs can be compared
    (e.g. to see the event-driven kernel's effect without digging through
    pytest-benchmark output).  ``cache_hit`` marks runs served entirely
    from the runner's memo/disk caches — a 0.004 s "fig5" entry is a
    cache lookup, not a simulation, and must never be read as a speedup.
    """
    path = os.path.join(_results_dir(), "timing.json")
    try:
        with open(path) as handle:
            timings = json.load(handle)
    except (OSError, json.JSONDecodeError):
        timings = {}
    entry = {
        "when": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "seconds": round(seconds, 3),
        "full": FULL,
    }
    if cache_hit is not None:
        entry["cache_hit"] = bool(cache_hit)
    timings.setdefault(name, []).append(entry)
    with open(path, "w") as handle:
        json.dump(timings, handle, indent=2, sort_keys=True)
        handle.write("\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing,
    recording its wall-clock into ``bench_results/timing.json``.

    The entry is tagged ``cache_hit: true`` when the run performed no
    fresh simulation (every spec came from the runner's caches)."""
    from repro.experiments.runner import simulated_runs

    name = getattr(benchmark, "name", None) or getattr(fn, "__name__", "bench")
    before = simulated_runs()
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    _record_timing(
        name,
        time.perf_counter() - start,
        cache_hit=simulated_runs() == before,
    )
    return result


#: The tick-everything kernel's cold fig5 wall-clock (recorded 2026-08-05,
#: before the event-driven rewrite) — the denominator for every speedup
#: quoted in BENCH_fig5.json.
FIG5_BASELINE_SECONDS = 45.954


def append_bench_fig5(
    config: str,
    wall_seconds: float,
    cache_hit: bool,
    extra: dict = None,
) -> dict:
    """Append one fig5 wall-clock measurement to ``BENCH_fig5.json``.

    The file is a trajectory, not a snapshot: a pinned tick-all
    ``baseline`` plus a ``runs`` list, newest last.  ``config``
    distinguishes the standard bench configuration from the CI smoke
    job's reduced one — regression checks only compare like with like.
    Only cold runs (``cache_hit`` false) are meaningful for speedups;
    cache hits are recorded but carry no ``speedup_vs_baseline``.
    Returns the appended entry.
    """
    path = os.path.join(_results_dir(), "BENCH_fig5.json")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload.setdefault(
        "baseline",
        {
            "when": "2026-08-05T12:45:54",
            "wall_seconds": FIG5_BASELINE_SECONDS,
            "kernel": "tick-all",
            "config": "bench",
        },
    )
    entry = {
        "when": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "wall_seconds": round(wall_seconds, 3),
        "kernel": os.environ.get("REPRO_KERNEL_MODE", "event"),
        "config": config,
        "cache_hit": bool(cache_hit),
        "full": FULL,
    }
    if not cache_hit and config == "bench":
        entry["speedup_vs_baseline"] = round(
            FIG5_BASELINE_SECONDS / wall_seconds, 2
        )
    if extra:
        entry.update(extra)
    payload.setdefault("runs", []).append(entry)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry


def save_json(name: str, payload: dict) -> str:
    """Persist a machine-readable result under ``bench_results/``.

    Companion to :func:`save_and_print`: the ``.txt`` tables are for
    humans, these ``.json`` files are for tooling (regression diffing,
    the telemetry smoke job's artifacts).  Returns the written path.
    """
    out_dir = _results_dir()
    suffix = "_full" if FULL else ""
    path = os.path.join(out_dir, f"{name}{suffix}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def save_and_print(name: str, text: str) -> None:
    """Print a rendered table and persist it under ``bench_results/``.

    pytest captures stdout by default, so the benches also write their
    tables to files; EXPERIMENTS.md records the figure-quality runs.
    """
    print()
    print(text)
    out_dir = _results_dir()
    suffix = "_full" if FULL else ""
    path = os.path.join(out_dir, f"{name}{suffix}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
