"""Shared benchmark configuration.

The benchmarks regenerate the paper's tables/figures at a reduced default
scale so the whole suite stays tractable in pure Python; set
``REPRO_BENCH_FULL=1`` for the figure-quality configuration (all eight
workloads, full trace length — expect a long run).

Fig. 5 and Fig. 7 intentionally share simulation specs: the runner memoizes
(scheme, workload, config) results within the pytest session, so the energy
view prices the very runs the latency view measured, as in the paper.
"""

import os

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Workloads used by the figure benchmarks.
BENCH_WORKLOADS = (
    ("blackscholes", "bodytrack", "canneal", "dedup",
     "fluidanimate", "freqmine", "streamcluster", "x264")
    if FULL
    else ("blackscholes", "canneal", "dedup", "fluidanimate")
)

#: Accesses per core for the CMP simulations.
BENCH_ACCESSES = 1500 if FULL else 800

#: Workloads/meshes for the Fig. 8 scalability sweep.
BENCH_FIG8_WORKLOADS = (
    ("canneal", "freqmine", "streamcluster", "x264")
    if FULL
    else ("canneal", "fluidanimate")
)
BENCH_FIG8_MESHES = ((2, 2), (4, 4), (8, 8))


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def save_and_print(name: str, text: str) -> None:
    """Print a rendered table and persist it under ``bench_results/``.

    pytest captures stdout by default, so the benches also write their
    tables to files; EXPERIMENTS.md records the figure-quality runs.
    """
    print()
    print(text)
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    suffix = "_full" if FULL else ""
    path = os.path.join(out_dir, f"{name}{suffix}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
