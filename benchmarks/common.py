"""Shared benchmark configuration.

The benchmarks regenerate the paper's tables/figures at a reduced default
scale so the whole suite stays tractable in pure Python; set
``REPRO_BENCH_FULL=1`` for the figure-quality configuration (all eight
workloads, full trace length — expect a long run).

Fig. 5 and Fig. 7 intentionally share simulation specs: the runner memoizes
(scheme, workload, config) results within the pytest session, so the energy
view prices the very runs the latency view measured, as in the paper.
"""

import json
import os
import time

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Workloads used by the figure benchmarks.
BENCH_WORKLOADS = (
    ("blackscholes", "bodytrack", "canneal", "dedup",
     "fluidanimate", "freqmine", "streamcluster", "x264")
    if FULL
    else ("blackscholes", "canneal", "dedup", "fluidanimate")
)

#: Accesses per core for the CMP simulations.
BENCH_ACCESSES = 1500 if FULL else 800

#: Workloads/meshes for the Fig. 8 scalability sweep.
BENCH_FIG8_WORKLOADS = (
    ("canneal", "freqmine", "streamcluster", "x264")
    if FULL
    else ("canneal", "fluidanimate")
)
BENCH_FIG8_MESHES = ((2, 2), (4, 4), (8, 8))


def _results_dir() -> str:
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    return out_dir


def _record_timing(name: str, seconds: float) -> None:
    """Append this run's wall-clock to ``bench_results/timing.json``.

    The file maps benchmark name -> list of ``{when, seconds, full}``
    entries, newest last, so successive runs can be compared (e.g. to see
    the parallel runner's effect without digging through pytest-benchmark
    output).
    """
    path = os.path.join(_results_dir(), "timing.json")
    try:
        with open(path) as handle:
            timings = json.load(handle)
    except (OSError, json.JSONDecodeError):
        timings = {}
    timings.setdefault(name, []).append(
        {
            "when": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "seconds": round(seconds, 3),
            "full": FULL,
        }
    )
    with open(path, "w") as handle:
        json.dump(timings, handle, indent=2, sort_keys=True)
        handle.write("\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing,
    recording its wall-clock into ``bench_results/timing.json``."""
    name = getattr(benchmark, "name", None) or getattr(fn, "__name__", "bench")
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    _record_timing(name, time.perf_counter() - start)
    return result


def save_json(name: str, payload: dict) -> str:
    """Persist a machine-readable result under ``bench_results/``.

    Companion to :func:`save_and_print`: the ``.txt`` tables are for
    humans, these ``.json`` files are for tooling (regression diffing,
    the telemetry smoke job's artifacts).  Returns the written path.
    """
    out_dir = _results_dir()
    suffix = "_full" if FULL else ""
    path = os.path.join(out_dir, f"{name}{suffix}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def save_and_print(name: str, text: str) -> None:
    """Print a rendered table and persist it under ``bench_results/``.

    pytest captures stdout by default, so the benches also write their
    tables to files; EXPERIMENTS.md records the figure-quality runs.
    """
    print()
    print(text)
    out_dir = _results_dir()
    suffix = "_full" if FULL else ""
    path = os.path.join(out_dir, f"{name}{suffix}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
