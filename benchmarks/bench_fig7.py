"""Fig. 7 benchmark: memory-subsystem energy vs the no-compression baseline.

Paper: DISCO consumes ~73.3 % of baseline energy, beating CNC by ~9.1 %
and CC by ~8.3 %.  Shares the Fig. 5 simulations via the runner memo.
"""

from common import save_and_print, BENCH_ACCESSES, BENCH_WORKLOADS, once

from repro.experiments.fig7 import fig7, render


def test_fig7(benchmark):
    result = once(
        benchmark,
        lambda: fig7(
            workloads=BENCH_WORKLOADS, accesses_per_core=BENCH_ACCESSES
        ),
    )
    save_and_print('fig7', render(result))
    avg = result.average
    # Every compressing scheme saves energy over the baseline.
    for scheme in ("cc", "cnc", "disco"):
        assert avg[scheme] < 1.0
    # DISCO is the most efficient (paper: beats CC and CNC).
    assert avg["disco"] <= avg["cc"]
    assert avg["disco"] <= avg["cnc"]
    # And lands in the paper's neighbourhood (~0.73 of baseline).
    assert 0.55 <= avg["disco"] <= 0.95
