#!/usr/bin/env python3
"""Regenerate the figure-quality (8-workload, full-length) artifacts.

Standalone companion to the pytest benchmarks: runs Fig. 5 and Fig. 7 at
figure scale (they share simulations via the runner memo) and optionally
Fig. 6/Fig. 8, writing the rendered tables under ``bench_results/*_full.txt``.
Equivalent to ``REPRO_BENCH_FULL=1 pytest benchmarks/`` but selectable:

    python benchmarks/run_full_figures.py fig5 fig7
    python benchmarks/run_full_figures.py all
"""

import os
import sys
import time

from repro.experiments.fig5 import fig5, render as render5
from repro.experiments.fig6 import fig6, render as render6
from repro.experiments.fig7 import fig7, render as render7
from repro.experiments.fig8 import fig8, render as render8

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


def save(name: str, text: str) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}_full.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(text)
    print(f"[saved {path}]")


def main(targets) -> None:
    if not targets or "all" in targets:
        targets = ["fig5", "fig7", "fig6", "fig8"]
    start = time.time()
    for target in targets:
        print(f"== {target} (figure scale) ==")
        if target == "fig5":
            save("fig5", render5(fig5()))
        elif target == "fig7":
            save("fig7", render7(fig7()))
        elif target == "fig6":
            save("fig6", render6(fig6()))
        elif target == "fig8":
            save("fig8", render8(fig8()))
        else:
            raise SystemExit(f"unknown target {target!r}")
        print(f"[elapsed {time.time() - start:.0f}s]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
